// Package runtime is the live, in-process message-passing substrate: one
// goroutine per rank, real payload movement, and the same matching-engine
// semantics as a real MPI point-to-point layer (posted-receive queue,
// unexpected-message queue, eager and rendezvous protocols, completion
// callbacks fired from the owner's progress loop).
//
// It implements comm.Comm, so every collective in internal/coll and
// internal/core — including ADAPT's event-driven state machines — runs on
// it unchanged, with real concurrency instead of simulated time. The
// simulator (internal/simmpi) reproduces the paper's scale; this runtime
// proves the algorithms against a genuinely parallel executor and backs
// the runnable examples.
package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/trace"
)

// DefaultEagerLimit is the eager/rendezvous protocol switch-over.
const DefaultEagerLimit = 8 * 1024

// World is a live communicator: n ranks sharing an address space.
type World struct {
	ranks      []*Comm
	start      time.Time
	eagerLimit int
	runTimeout time.Duration

	// Trace, when non-nil, receives every point-to-point event with causal
	// edges. Timestamps are wall-clock offsets from the world's creation,
	// so unlike the simulator's virtual-time traces they vary run to run.
	Trace *trace.Buffer

	// Fault injection (nil inj = fault-free fast paths; see chaos.go).
	inj     *faults.Injector
	rec     faults.Recovery
	xmitSeq atomic.Uint64

	failMu   sync.Mutex
	failures []*faults.TimeoutError

	// Fail-stop crash model (nil crash = no rules armed; see crash.go).
	crashPlan     []faults.Crash
	crashMu       sync.Mutex
	crash         *crashCtl
	watchdogFired atomic.Bool
}

// Option configures a World.
type Option func(*World)

// WithEagerLimit overrides the eager protocol threshold.
func WithEagerLimit(n int) Option {
	return func(w *World) { w.eagerLimit = n }
}

// WithRunTimeout bounds every Run call: if the ranks have not all returned
// within d, Run panics with a per-rank dump of pending operations instead
// of hanging the caller (and, under `go test`, the whole test binary).
func WithRunTimeout(d time.Duration) Option {
	return func(w *World) { w.runTimeout = d }
}

// WithTrace attaches a causal trace buffer to the world.
func WithTrace(tb *trace.Buffer) Option {
	return func(w *World) { w.Trace = tb }
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("runtime: world size %d", n))
	}
	w := &World{start: time.Now(), eagerLimit: DefaultEagerLimit}
	for _, o := range opts {
		o(w)
	}
	for r := 0; r < n; r++ {
		w.ranks = append(w.ranks, &Comm{w: w, rank: r, wake: make(chan struct{}, 1)})
	}
	w.armCrashes()
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank r's endpoint.
func (w *World) Rank(r int) *Comm { return w.ranks[r] }

// Run executes body once per rank, each on its own goroutine, and blocks
// until all return. If any ranks panic, Run re-panics with every rank's
// failure (not just the first drained one) so a collective bug that kills
// several ranks at once is diagnosable from a single message.
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan string, len(w.ranks))
	for _, c := range w.ranks {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", c.rank, p)
				}
			}()
			body(c)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if w.runTimeout > 0 {
		t := time.NewTimer(w.runTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			// Deliberately leak the stuck rank goroutines: the dump names the
			// culprits, and a clean panic beats a hung test binary. The dump
			// is emitted at most once per World — concurrent Run calls that
			// time out together must not interleave two dumps.
			if w.watchdogFired.CompareAndSwap(false, true) {
				panic(fmt.Sprintf("runtime: Run still incomplete after %v\n%s", w.runTimeout, w.pendingDump()))
			}
			panic(fmt.Sprintf("runtime: Run still incomplete after %v (pending-op dump already emitted by an earlier watchdog)", w.runTimeout))
		}
	} else {
		<-done
	}
	close(panics)
	var msgs []string
	for p := range panics {
		msgs = append(msgs, p)
	}
	switch len(msgs) {
	case 0:
	case 1:
		panic(msgs[0])
	default:
		sort.Strings(msgs) // goroutine finish order is nondeterministic
		panic(fmt.Sprintf("runtime: %d ranks panicked:\n%s", len(msgs), strings.Join(msgs, "\n")))
	}
}

// envelope is a message (or rendezvous announcement) at the receiver.
type envelope struct {
	src int
	tag comm.Tag
	msg comm.Msg
	// rendezvous: the sender's request, completed when the payload is
	// pulled; nil for eager envelopes (whose payload was already copied).
	rts *request
	// xid is the reliable-transmission id under fault injection; the
	// receiver suppresses duplicate deliveries of the same id. Zero on the
	// fault-free path.
	xid uint64
	// postID carries the sender's SendPost trace record id for the
	// matched-receive Link edge. Zero when tracing is off.
	postID uint64
}

// request implements comm.Request. All mutable state is guarded by the
// owner rank's mutex.
type request struct {
	c      *Comm
	isSend bool
	done   bool
	status comm.Status
	cb     func(comm.Status)

	src int
	tag comm.Tag

	// causal trace ids (0 when tracing is off); postID is written at post
	// time on the owner, matchID/doneID under the owner's mutex.
	postID  uint64
	matchID uint64
	doneID  uint64
}

func (r *request) Test() (comm.Status, bool) {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.status, r.done
}

func (r *request) IsSend() bool { return r.isSend }

// Comm is one rank's endpoint. Its blocking methods must be called from
// the rank's own goroutine; internal delivery may run on peer goroutines.
type Comm struct {
	w    *World
	rank int

	mu             sync.Mutex
	posted         []*request
	unexpected     []*envelope
	cbQueue        []*request
	completedCount uint64
	pendingOps     int
	seen           map[uint64]struct{} // delivered xids (fault injection dedup)
	halted         bool                // this rank crashed (fail-stop)
	notices        []comm.Notice       // control-plane queue (death/commit)
	noticeSeq      uint64

	// curCause is the rank's causal context (see simmpi): only ever
	// touched from the owner goroutine (fireCallbacks, posts, TraceEmit).
	curCause uint64

	wake chan struct{}
}

var _ comm.Comm = (*Comm)(nil)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.w.ranks) }

// Now returns wall time since the world was created.
func (c *Comm) Now() time.Duration { return time.Since(c.w.start) }

// Compute is a no-op in the live runtime: real work (reductions, copies)
// is performed for real by the caller; there is nothing to charge.
func (c *Comm) Compute(n int, kind comm.ComputeKind) {}

// TraceEmit implements trace.Emitter: it stamps the record with this
// rank's identity and wall clock, defaults its Parent to the current
// causal context, and appends it. Returns 0 when tracing is off.
func (c *Comm) TraceEmit(r trace.Record) uint64 {
	tb := c.w.Trace
	if tb == nil {
		return 0
	}
	r.At = c.Now()
	r.Rank = c.rank
	if r.Parent == 0 {
		r.Parent = c.curCause
	}
	return tb.Add(r)
}

// TraceSetCause installs id as the rank's causal context and returns the
// previous one. Owner-goroutine only, like every blocking Comm method.
func (c *Comm) TraceSetCause(id uint64) uint64 {
	prev := c.curCause
	c.curCause = id
	return prev
}

// signal wakes the owner if it is blocked in a wait loop.
func (c *Comm) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// complete finishes req. Callable from any goroutine; takes the owner's
// lock.
func (req *request) complete(st comm.Status) {
	c := req.c
	c.mu.Lock()
	if req.done {
		c.mu.Unlock()
		panic("runtime: request completed twice")
	}
	req.done = true
	req.status = st
	if tb := c.w.Trace; tb != nil {
		kind := trace.RecvDone
		if req.isSend {
			kind = trace.SendDone
		}
		req.doneID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: kind,
			Peer: st.Source, Tag: st.Tag, Size: st.Msg.Size,
			Parent: req.postID, Link: req.matchID})
	}
	c.completedCount++
	c.pendingOps--
	if req.cb != nil {
		c.cbQueue = append(c.cbQueue, req)
	}
	c.mu.Unlock()
	c.signal()
}

// popCallbacks atomically takes the ready-callback batch.
func (c *Comm) popCallbacks() []*request {
	c.mu.Lock()
	batch := c.cbQueue
	c.cbQueue = nil
	c.mu.Unlock()
	return batch
}

// fireCallbacks runs a batch on the owner goroutine. Returns count fired.
// The completion a callback reacts to becomes the rank's causal context
// while it runs and persists afterwards (see simmpi's curCause), so both
// callback-posted ops and straight-line code after a Wait link back to
// the completion that released them.
func (c *Comm) fireCallbacks(batch []*request) int {
	for _, req := range batch {
		cb := req.cb
		req.cb = nil
		if req.doneID != 0 {
			c.curCause = req.doneID
		}
		cb(req.status)
	}
	return len(batch)
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(dst int, tag comm.Tag, msg comm.Msg) comm.Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("runtime: send to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := &request{c: c, isSend: true}
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: msg.Size, Parent: c.curCause})
	}
	c.mu.Lock()
	c.pendingOps++
	c.mu.Unlock()
	d := c.w.ranks[dst]
	st := comm.Status{Source: c.rank, Tag: tag, Msg: msg}
	if msg.Size <= c.w.eagerLimit {
		// Eager: copy the payload out (the sender may reuse its buffer as
		// soon as we return) and deliver; the send completes immediately.
		// The copy is pooled and ownership passes to the receiver.
		delivered := msg
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			delivered.Data = buf
		}
		env := &envelope{src: c.rank, tag: tag, msg: delivered, postID: req.postID}
		if c.w.inj != nil {
			c.chaosDeliver(d, env, msg.Size)
		} else {
			d.deliver(env)
		}
		req.complete(st)
		return req
	}
	// Rendezvous: announce; the payload is pulled zero-copy when matched,
	// completing this request only then.
	env := &envelope{src: c.rank, tag: tag, msg: msg, rts: req, postID: req.postID}
	if c.w.inj != nil {
		c.chaosDeliver(d, env, msg.Size)
	} else {
		d.deliver(env)
	}
	return req
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src int, tag comm.Tag) comm.Request {
	req := &request{c: c, src: src, tag: tag}
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.RecvPost,
			Peer: src, Tag: tag, Parent: c.curCause})
	}
	c.mu.Lock()
	c.pendingOps++
	for i, env := range c.unexpected {
		if req.matches(env) {
			c.unexpected = append(c.unexpected[:i:i], c.unexpected[i+1:]...)
			c.mu.Unlock()
			c.consume(req, env)
			return req
		}
	}
	c.posted = append(c.posted, req)
	c.mu.Unlock()
	return req
}

func (req *request) matches(env *envelope) bool {
	return (req.src == comm.AnySource || req.src == env.src) && req.tag.Matches(env.tag)
}

// deliver matches an incoming envelope against posted receives or parks
// it in the unexpected queue. Runs on the sender's goroutine (or a timer
// goroutine for fault-delayed copies).
func (c *Comm) deliver(env *envelope) {
	if c.w.crash != nil && c.w.rankDead(env.src) {
		// Annihilation: a copy in flight from a crashed rank vanishes at
		// arrival (timer-delayed chaos copies can outlive their sender).
		c.annihilate(env)
		return
	}
	c.mu.Lock()
	if c.halted {
		// Traffic addressed to a crashed rank: refuse it so a live
		// rendezvous sender fails instead of waiting forever for a grant.
		c.mu.Unlock()
		c.refuse(env)
		return
	}
	if env.xid != 0 {
		if _, dup := c.seen[env.xid]; dup {
			c.mu.Unlock()
			c.suppress(env)
			return
		}
		if c.seen == nil {
			c.seen = make(map[uint64]struct{})
		}
		c.seen[env.xid] = struct{}{}
	}
	for i, req := range c.posted {
		if req.matches(env) {
			c.posted = append(c.posted[:i:i], c.posted[i+1:]...)
			c.mu.Unlock()
			c.consume(req, env)
			return
		}
	}
	c.unexpected = append(c.unexpected, env)
	c.mu.Unlock()
	c.signal() // wake a blocked Probe
}

// consume completes a matched (receive, envelope) pair. For rendezvous
// envelopes it pulls the payload and releases the sender.
func (c *Comm) consume(req *request, env *envelope) {
	msg := env.msg
	req.matchID = env.postID // causal Link: this receive consumed that send
	if env.rts != nil {
		// Pull the payload out of the sender's buffer; after the sender's
		// request completes the sender may scribble on it. The pooled copy
		// is owned by the receiver.
		if msg.Data != nil {
			buf := comm.GetBuf(len(msg.Data))
			copy(buf, msg.Data)
			msg.Data = buf
		}
		env.rts.complete(comm.Status{Source: env.src, Tag: env.tag, Msg: env.msg})
	}
	req.complete(comm.Status{Source: env.src, Tag: env.tag, Msg: msg})
}

// Send performs a blocking send: for rendezvous-size messages it returns
// only once the receiver has matched (the paper's §2.1.1 handshake).
func (c *Comm) Send(dst int, tag comm.Tag, msg comm.Msg) {
	c.Wait(c.Isend(dst, tag, msg))
}

// Ssend performs a synchronous-mode send (MPI_Ssend): it returns only
// once the receiver has matched, regardless of message size — the
// rendezvous handshake is forced even for eager-sized payloads.
func (c *Comm) Ssend(dst int, tag comm.Tag, msg comm.Msg) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("runtime: ssend to rank %d of %d", dst, c.Size()))
	}
	c.w.noteSend(c) // crash point: the rank may die initiating this send
	req := &request{c: c, isSend: true}
	if tb := c.w.Trace; tb != nil {
		req.postID = tb.Add(trace.Record{At: c.Now(), Rank: c.rank, Kind: trace.SendPost,
			Peer: dst, Tag: tag, Size: msg.Size, Parent: c.curCause})
	}
	c.mu.Lock()
	c.pendingOps++
	c.mu.Unlock()
	d := c.w.ranks[dst]
	env := &envelope{src: c.rank, tag: tag, msg: msg, rts: req, postID: req.postID}
	if c.w.inj != nil {
		c.chaosDeliver(d, env, msg.Size)
	} else {
		d.deliver(env)
	}
	c.Wait(req)
}

// Iprobe reports whether a message matching (src, tag) has arrived
// without consuming it (MPI_Iprobe). src may be AnySource, tag AnyTag.
func (c *Comm) Iprobe(src int, tag comm.Tag) (comm.Status, bool) {
	probe := &request{c: c, src: src, tag: tag}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, env := range c.unexpected {
		if probe.matches(env) {
			return comm.Status{Source: env.src, Tag: env.tag,
				Msg: comm.Msg{Size: env.msg.Size, Space: env.msg.Space}}, true
		}
	}
	return comm.Status{}, false
}

// Probe blocks until a matching message is available (MPI_Probe), leaving
// it in the unexpected queue for a later Recv.
func (c *Comm) Probe(src int, tag comm.Tag) comm.Status {
	for {
		if st, ok := c.Iprobe(src, tag); ok {
			return st
		}
		<-c.wake
	}
}

// Recv performs a blocking receive.
func (c *Comm) Recv(src int, tag comm.Tag) comm.Status {
	return c.Wait(c.Irecv(src, tag))
}

// Wait blocks until r completes, firing ready callbacks meanwhile.
func (c *Comm) Wait(r comm.Request) comm.Status {
	req := r.(*request)
	for {
		c.fireCallbacks(c.popCallbacks())
		if st, ok := req.Test(); ok {
			// doneID was published under c.mu before done; Test's lock
			// round-trip makes it visible here. The completion that
			// released this Wait is the rank's causal context from now on.
			if req.doneID != 0 {
				c.curCause = req.doneID
			}
			return st
		}
		<-c.wake
	}
}

// WaitAll blocks until every request completes; nil entries are skipped.
func (c *Comm) WaitAll(rs []comm.Request) {
	for {
		c.fireCallbacks(c.popCallbacks())
		alldone := true
		for _, r := range rs {
			if r == nil {
				continue
			}
			if _, ok := r.Test(); !ok {
				alldone = false
				break
			}
		}
		if alldone {
			// The rank proceeds only once every request has landed: the
			// latest completion (largest record id) is its causal context.
			var last uint64
			for _, r := range rs {
				if req, ok := r.(*request); ok && req != nil && req.doneID > last {
					last = req.doneID
				}
			}
			if last != 0 {
				c.curCause = last
			}
			return
		}
		<-c.wake
	}
}

// WaitAny blocks until some live request completes and returns its index;
// nil entries are skipped.
func (c *Comm) WaitAny(rs []comm.Request) (int, comm.Status) {
	live := false
	for _, r := range rs {
		if r != nil {
			live = true
			break
		}
	}
	if !live {
		panic("runtime: WaitAny with no live request")
	}
	for {
		c.fireCallbacks(c.popCallbacks())
		for i, r := range rs {
			if r == nil {
				continue
			}
			if st, ok := r.Test(); ok {
				if req, ok := r.(*request); ok && req.doneID != 0 {
					c.curCause = req.doneID
				}
				return i, st
			}
		}
		<-c.wake
	}
}

// OnComplete attaches fn to r; it fires on this rank's goroutine from
// inside Progress or a Wait variant.
func (c *Comm) OnComplete(r comm.Request, fn func(comm.Status)) {
	req := r.(*request)
	if req.c != c {
		panic("runtime: OnComplete on foreign request")
	}
	c.mu.Lock()
	if req.cb != nil {
		c.mu.Unlock()
		panic("runtime: request already has a callback")
	}
	req.cb = fn
	if req.done {
		c.cbQueue = append(c.cbQueue, req)
		c.mu.Unlock()
		c.signal()
		return
	}
	c.mu.Unlock()
}

// TryProgress fires ready callbacks without blocking.
func (c *Comm) TryProgress() bool {
	return c.fireCallbacks(c.popCallbacks()) > 0
}

// Progress blocks until at least one completion is processed, fires the
// ready callbacks, and returns.
func (c *Comm) Progress() {
	c.mu.Lock()
	start := c.completedCount
	c.mu.Unlock()
	for {
		fired := c.fireCallbacks(c.popCallbacks())
		c.mu.Lock()
		advanced := c.completedCount > start
		pending := c.pendingOps
		c.mu.Unlock()
		if fired > 0 || advanced {
			return
		}
		if pending == 0 {
			panic(fmt.Sprintf("runtime: rank %d progressing with no operation in flight", c.rank))
		}
		<-c.wake
	}
}
