package runtime

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
)

func ptag(i int) comm.Tag { return comm.MakeTag(comm.KindP2P, 0, i) }

func TestLiveChaosRecoversFromDropsAndDups(t *testing.T) {
	plan := faults.MustParsePlan("seed=21; all: drop=0.3, dup=0.3")
	w := NewWorld(4, WithFaults(plan, faults.DefaultRecovery()),
		WithRunTimeout(30*time.Second))
	payload := []byte("chaos-proof payload")
	var mu sync.Mutex
	received := map[int]int{}
	w.Run(func(c *Comm) {
		me := c.Rank()
		next := (me + 1) % 4
		prev := (me + 3) % 4
		for i := 0; i < 25; i++ {
			r := c.Irecv(prev, ptag(i))
			c.Send(next, ptag(i), comm.Bytes(payload))
			st := c.Wait(r)
			if !bytes.Equal(st.Msg.Data, payload) {
				t.Errorf("rank %d round %d: corrupted payload", me, i)
			}
			mu.Lock()
			received[me]++
			mu.Unlock()
		}
	})
	for r := 0; r < 4; r++ {
		if received[r] != 25 {
			t.Errorf("rank %d received %d of 25", r, received[r])
		}
	}
	st := w.FaultStats()
	if st.Drops == 0 || st.Dups == 0 || st.Retries == 0 || st.Suppressed == 0 {
		t.Fatalf("plan exercised too little: %v", st)
	}
	if fs := w.Failures(); len(fs) != 0 {
		t.Fatalf("unrecovered loss under DefaultRecovery: %v", fs[0])
	}
}

func TestLiveRendezvousLossFailsStructured(t *testing.T) {
	plan := faults.MustParsePlan("seed=5; link 0->1: drop=1")
	w := NewWorld(2, WithFaults(plan, faults.NoRecovery()),
		WithRunTimeout(30*time.Second))
	var st comm.Status
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Rendezvous-size: the send completes only on match — or, here,
			// with the transport's structured loss report.
			st = c.Wait(c.Isend(1, ptag(3), comm.Sized(DefaultEagerLimit+1)))
		}
	})
	if st.Err == nil {
		t.Fatal("black-holed rendezvous send completed cleanly")
	}
	var te *faults.TimeoutError
	if !errors.As(st.Err, &te) {
		t.Fatalf("error is %T, want *faults.TimeoutError", st.Err)
	}
	if te.Rank != 0 || te.Peer != 1 || te.Tag != ptag(3) {
		t.Fatalf("timeout misdescribes the edge: %+v", te)
	}
	if len(w.Failures()) != 1 {
		t.Fatalf("%d failures recorded, want 1", len(w.Failures()))
	}
}

// An eager message whose every attempt drops is silently lost (the send
// already completed); the receiver's hang must surface as the watchdog's
// pending-request dump rather than a hung test binary.
func TestRunTimeoutDumpsPendingRequests(t *testing.T) {
	plan := faults.MustParsePlan("seed=8; link 0->1: drop=1")
	w := NewWorld(2, WithFaults(plan, faults.NoRecovery()),
		WithRunTimeout(300*time.Millisecond))
	var msg string
	func() {
		defer func() {
			if p := recover(); p != nil {
				msg = p.(string)
			}
		}()
		w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(1, ptag(9), comm.Bytes([]byte("lost forever")))
			case 1:
				c.Recv(0, ptag(9))
			}
		})
	}()
	if msg == "" {
		t.Fatal("Run returned instead of panicking with a dump")
	}
	for _, want := range []string{"still incomplete", "rank 1", "posted recv src=0", "p2p/0/seg9", "lost:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
}

// Without faults the watchdog must stay silent even on slow bodies.
func TestRunTimeoutQuietOnSuccess(t *testing.T) {
	w := NewWorld(2, WithRunTimeout(30*time.Second))
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, ptag(0), comm.Bytes([]byte("ok")))
		} else {
			c.Recv(0, ptag(0))
		}
	})
	if w.FaultStats().Total() != 0 {
		t.Fatal("fault counters moved without a plan")
	}
}

// Same seed, same world → same drop/dup/loss schedule, regardless of
// goroutine interleaving.
func TestLiveFaultScheduleDeterministic(t *testing.T) {
	run := func() faults.Stats {
		plan := faults.MustParsePlan("seed=77; all: drop=0.25; link 2->0: dup=0.5")
		w := NewWorld(3, WithFaults(plan, faults.DefaultRecovery()),
			WithRunTimeout(30*time.Second))
		w.Run(func(c *Comm) {
			me := c.Rank()
			for i := 0; i < 15; i++ {
				r := c.Irecv((me+2)%3, ptag(i))
				c.Send((me+1)%3, ptag(i), comm.Bytes([]byte("det")))
				c.Wait(r)
			}
		})
		return w.FaultStats()
	}
	a, b := run(), run()
	// Suppressed counts depend on wall-clock dup/original races; the
	// injected schedule (drops, dups, timeouts) must be identical.
	if a.Drops != b.Drops || a.Dups != b.Dups || a.Timeouts != b.Timeouts || a.Retries != b.Retries {
		t.Fatalf("schedules diverge: %v vs %v", a, b)
	}
	if a.Drops == 0 {
		t.Fatal("plan injected nothing")
	}
}
