package runtime

import (
	"sort"
	"strings"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
)

func runExpectingPanic(t *testing.T, w *World, body func(c *Comm)) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if p := recover(); p != nil {
				msg = p.(string)
			}
		}()
		w.Run(body)
	}()
	if msg == "" {
		t.Fatal("Run returned instead of panicking")
	}
	return msg
}

// The watchdog emits the per-rank pending-op dump at most once per World:
// a second timed-out Run must panic with a pointer to the earlier dump,
// not interleave a new one.
func TestWatchdogFiresOncePerWorld(t *testing.T) {
	w := NewWorld(2, WithRunTimeout(200*time.Millisecond))
	hang := func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, ptag(42)) // never sent; rank 0 hangs until the watchdog fires
		}
	}
	first := runExpectingPanic(t, w, hang)
	if !strings.Contains(first, "still incomplete") || !strings.Contains(first, "ops in flight") {
		t.Fatalf("first watchdog panic is not the dump:\n%s", first)
	}
	second := runExpectingPanic(t, w, hang)
	if !strings.Contains(second, "already emitted") {
		t.Fatalf("second watchdog panic re-emitted the dump:\n%s", second)
	}
	if strings.Contains(second, "ops in flight") {
		t.Fatalf("second watchdog panic contains a per-rank dump:\n%s", second)
	}
}

// The dump's lost-message lines must come out sorted, so the same set of
// losses renders identically no matter which retry chain timed out first.
func TestWatchdogDumpSortsLostMessages(t *testing.T) {
	plan := faults.MustParsePlan("seed=8; link 0->1: drop=1")
	w := NewWorld(2, WithFaults(plan, faults.NoRecovery()),
		WithRunTimeout(300*time.Millisecond))
	msg := runExpectingPanic(t, w, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for _, seg := range []int{9, 3, 5} {
				c.Send(1, ptag(seg), comm.Bytes([]byte("lost")))
			}
		case 1:
			c.Recv(0, ptag(9))
		}
	})
	var lost []string
	for _, line := range strings.Split(msg, "\n") {
		if strings.Contains(line, "lost:") {
			lost = append(lost, line)
		}
	}
	if len(lost) != 3 {
		t.Fatalf("dump has %d lost lines, want 3:\n%s", len(lost), msg)
	}
	if !sort.StringsAreSorted(lost) {
		t.Fatalf("lost lines not sorted:\n%s", strings.Join(lost, "\n"))
	}
}
