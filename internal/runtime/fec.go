package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/comm"
	"adapt/internal/fec"
	"adapt/internal/perf"
	"adapt/internal/progress"
	"adapt/internal/trace"
)

// Forward error correction over the live runtime's eager segment
// stream, mirroring the simulator's layer (internal/simmpi/fec.go) with
// the same send-time resolution trick the chaos transport uses: the
// first attempt's verdict is drawn when the segment is sent, so a lost
// member is known immediately and simply parked in its group instead of
// entering the retry walk. When the group closes (K members or the
// idle-flush timer) the parity shards draw their own single-attempt
// verdicts; erasures within the surviving parity are reconstructed —
// genuinely decoded through the codec, not copied from the sender's
// buffer — and delivered with no retransmit backoff spent. Erasures
// beyond the parity fall back to the ARQ walk from attempt 1, keeping
// the structured-TimeoutError path intact.

// WithFEC arms erasure coding over the eager segment stream. Requires
// WithFaults (FEC shadows the chaos delivery path); without a fault
// plan the option is inert.
func WithFEC(cfg fec.Config) Option {
	return func(w *World) { w.fecCfg = cfg.Normalized() }
}

// FECStats returns what the FEC layer did; zero when not enabled.
func (w *World) FECStats() fec.Stats {
	if w.fec == nil {
		return fec.Stats{}
	}
	return fec.Stats{
		ParityEncoded: w.fec.encoded.Load(),
		Reconstructed: w.fec.reconstructed.Load(),
		GroupsLost:    w.fec.groupsLost.Load(),
	}
}

// fecCtl is the world's FEC layer: per-link open groups under a mutex
// (senders run on many rank goroutines) plus the adaptive redundancy
// controller.
type fecCtl struct {
	w   *World
	cfg fec.Config
	ctl *fec.Controller

	mu   sync.Mutex
	open map[uint64]*fecGroup // directed link -> group being filled
	gid  uint64

	encoded       atomic.Uint64
	reconstructed atomic.Uint64
	groupsLost    atomic.Uint64
}

func newFecCtl(w *World) *fecCtl {
	return &fecCtl{w: w, cfg: w.fecCfg, ctl: fec.NewController(w.fecCfg),
		open: make(map[uint64]*fecGroup)}
}

// fecGroup is one erasure-coding group on a directed link.
type fecGroup struct {
	id      uint64
	src, ds *Comm
	members []*fecMember
}

// fecMember is one eager segment enrolled in a group. Survivors were
// delivered at send time and leave a framer-owned shard copy behind;
// lost members park their undelivered envelope (whose payload doubles
// as the encode input) until the group resolves.
type fecMember struct {
	d     *Comm
	env   *progress.Env
	size  int
	lost  bool
	shard []byte
}

// send carries one eager envelope under FEC: resolve the first attempt's
// verdict, deliver survivors immediately, park losses in the group.
func (f *fecCtl) send(c *Comm, d *Comm, env *progress.Env, size int) {
	w := f.w
	v := w.inj.Message(c.rank, d.rank, env.Tag, env.Xid, 0, c.Now(), size)
	mem := &fecMember{d: d, env: env, size: size, lost: v.Drop || v.Corrupt}
	if mem.lost {
		c.traceFault(trace.FaultDrop, d.rank, env.Tag, size, env.Xid)
	} else {
		if env.Msg.Data != nil {
			mem.shard = comm.GetBuf(len(env.Msg.Data))
			copy(mem.shard, env.Msg.Data)
		}
		if v.Dup {
			dup := *env
			if dup.Msg.Data != nil {
				buf := comm.GetBuf(len(dup.Msg.Data))
				copy(buf, dup.Msg.Data)
				dup.Msg.Data = buf
			}
			deliverAfter(d, &dup, v.Extra+w.rec.RTO/2)
		}
		deliverAfter(d, env, v.Extra)
	}

	key := uint64(uint32(c.rank))<<32 | uint64(uint32(d.rank))
	f.mu.Lock()
	g := f.open[key]
	if g == nil {
		f.gid++
		g = &fecGroup{id: f.gid, src: c, ds: d}
		f.open[key] = g
		// Idle flush: a trickling stream must not hold its losses hostage
		// for long — unresolved members are invisible to the ARQ backstop
		// until the group closes.
		time.AfterFunc(w.rec.RTO/4, func() {
			f.mu.Lock()
			if f.open[key] == g {
				delete(f.open, key)
				f.mu.Unlock()
				f.close(g)
				return
			}
			f.mu.Unlock()
		})
	}
	g.members = append(g.members, mem)
	if len(g.members) >= f.cfg.K {
		delete(f.open, key)
		f.mu.Unlock()
		f.close(g)
		return
	}
	f.mu.Unlock()
}

// close seals a group: encode parity, draw each parity shard's one
// unacknowledged verdict, then either reconstruct the losses or hand
// them back to the retry walk.
func (f *fecCtl) close(g *fecGroup) {
	w := f.w
	k := len(g.members)
	m := f.ctl.ChooseM(g.src.rank, g.ds.rank, k)
	p := fec.Params{K: k, M: m}
	data := make([][]byte, k)
	sizes := make([]int, k)
	var missing []int
	for i, mem := range g.members {
		b := mem.shard
		if mem.lost {
			missing = append(missing, i)
			b = mem.env.Msg.Data
		}
		if b == nil {
			b = []byte{}
		}
		data[i] = b
		sizes[i] = len(b)
	}
	parity := fec.EncodeParity(p, data)
	f.encoded.Add(uint64(m))
	perf.RecordFecEncoded(m)
	have := 0
	for j := 0; j < m; j++ {
		ptag := comm.MakeTag(comm.KindFec, int(g.id%comm.SeqWrap), j)
		pxid := w.xmitSeq.Add(1)
		pv := w.inj.Message(g.src.rank, g.ds.rank, ptag, pxid, 0, g.src.Now(), len(parity[j]))
		if pv.Drop || pv.Corrupt {
			g.src.traceFault(trace.FaultDrop, g.ds.rank, ptag, len(parity[j]), pxid)
			comm.PutBuf(parity[j])
			parity[j] = nil
			continue
		}
		have++
	}
	f.ctl.Observe(g.src.rank, g.ds.rank, k+m, len(missing)+(m-have))

	recovered := false
	if len(missing) > 0 && fec.Recoverable(len(missing), have) {
		for _, i := range missing {
			data[i] = nil
		}
		if err := fec.Reconstruct(p, data, parity, sizes); err == nil {
			recovered = true
			for _, i := range missing {
				mem := g.members[i]
				if mem.env.Msg.Data != nil {
					// Deliver the decoded bytes, not the sender's retained
					// copy — the codec's output is what a remote receiver
					// would hold.
					comm.PutBuf(mem.env.Msg.Data)
					mem.env.Msg.Data = data[i]
				}
				f.reconstructed.Add(1)
				perf.RecordFecReconstructed()
				deliverAfter(mem.d, mem.env, 0)
			}
		}
	}
	if len(missing) > 0 && !recovered {
		f.groupsLost.Add(1)
		perf.RecordFecGroupLost()
		// ARQ backstop: attempt 0 is spent; resume the walk where a
		// retransmitting sender would be after its first timeout.
		for _, i := range missing {
			mem := g.members[i]
			g.src.chaosWalk(mem.d, mem.env, mem.size, 1, w.rec.RetryDelay(0, mem.env.Xid))
		}
	}
	for _, mem := range g.members {
		if mem.shard != nil {
			comm.PutBuf(mem.shard)
		}
	}
	for _, b := range parity {
		if b != nil {
			comm.PutBuf(b)
		}
	}
}
