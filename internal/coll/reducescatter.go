package coll

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/core"
)

// ReduceScatterRing folds every rank's n-block contribution and leaves
// block r (fully reduced) on rank r — the ring reduce-scatter that is the
// first half of Rabenseifner's allreduce and of the ring allreduce. The
// ring's step dependencies are inherent (each step folds what the
// previous step received), so this is a synchronized loop by nature;
// contrast with the event-driven collectives in internal/core.
//
// contrib must have Size divisible by the communicator size; contrib.Data
// is not modified. Returns this rank's reduced block.
func ReduceScatterRing(c comm.Comm, contrib comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	me := c.Rank()
	if contrib.Size%n != 0 {
		panic(fmt.Sprintf("coll: reduce-scatter buffer %dB not divisible by %d ranks", contrib.Size, n))
	}
	blk := contrib.Size / n
	if n == 1 {
		out := comm.Msg{Size: blk, Space: contrib.Space}
		if contrib.Data != nil {
			out.Data = append([]byte(nil), contrib.Data...)
		}
		return out
	}
	buf := contrib
	if contrib.Data != nil {
		buf = comm.Bytes(append([]byte(nil), contrib.Data...))
	}
	// The plain ring schedule leaves rank r with completed block
	// (r+1) mod n; permute block addressing so rank r ends with block r:
	// logical block b lives at physical slot (b−1+n) mod n of the ring
	// schedule... equivalently, shift every schedule index by −1.
	slice := func(i int) comm.Msg {
		i = (i - 1 + n) % n // schedule index → logical block
		out := comm.Msg{Size: blk, Space: contrib.Space}
		if buf.Data != nil {
			out.Data = buf.Data[i*blk : (i+1)*blk]
		}
		return out
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		tg := opt.TagOf(comm.KindAllreduce, step)
		r := c.Irecv(left, tg)
		c.Send(right, tg, slice(sendIdx))
		st := c.Wait(r)
		dst := slice(recvIdx)
		if st.Msg.Data != nil && dst.Data != nil {
			opt.Op.Apply(dst.Data, st.Msg.Data, opt.Datatype)
		}
		c.Compute(opt.ReduceCost(blk), comm.ComputeReduce)
	}
	// Completed schedule slot is (me+1); with the −1 shift that is
	// logical block me.
	return slice((me + 1) % n)
}

// AllreduceRabenseifner is Rabenseifner's algorithm: a ring
// reduce-scatter followed by the event-driven ring allgather — the
// bandwidth-optimal composition for large reductions (each byte crosses
// each link ~2× regardless of P). Consumes opt.Seq and opt.Seq+1.
func AllreduceRabenseifner(c comm.Comm, contrib comm.Msg, opt Options) comm.Msg {
	mine := ReduceScatterRing(c, contrib, opt)
	opt2 := opt
	opt2.Seq = opt.Seq + 1
	return core.Allgather(c, mine, opt2)
}
