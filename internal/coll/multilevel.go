package coll

import (
	"adapt/internal/comm"
	"adapt/internal/hwloc"
	"adapt/internal/trees"
)

// MultiLevelSpec configures the multi-communicator topology-aware scheme
// the paper compares against (§3.1): one sub-collective per hardware
// level, run strictly level-by-level with no overlap between levels —
// a node leader finishes the entire inter-node phase (all segments)
// before the intra-node phase starts.
type MultiLevelSpec struct {
	InterNode   trees.Builder
	InterSocket trees.Builder
	IntraSocket trees.Builder
	// Alg is the discipline inside each phase (Blocking or NonBlocking;
	// using Adapt here would still lack cross-level overlap).
	Alg Algorithm
}

// levels computes the per-phase groups exactly as trees.Topology does, so
// multi-level and single-tree runs are comparable: same leaders, same
// per-level orders.
type levelGroups struct {
	nodeLeaders  group   // root's node first
	socketGroups []group // per (node): socket leaders, node leader first
	coreGroups   []group // per (node,socket): ranks, socket leader first
}

func buildLevels(topo *hwloc.Topology, root int) levelGroups {
	var lg levelGroups
	rootPlace := topo.PlaceOf(root)
	nodeLeader := make([]int, topo.Nodes)
	for node := 0; node < topo.Nodes; node++ {
		if node == rootPlace.Node {
			nodeLeader[node] = root
		} else {
			nodeLeader[node] = topo.RanksOnNode(node)[0]
		}
	}
	lg.nodeLeaders = group{nodeLeader[rootPlace.Node]}
	for node := 0; node < topo.Nodes; node++ {
		if node != rootPlace.Node {
			lg.nodeLeaders = append(lg.nodeLeaders, nodeLeader[node])
		}
	}
	for node := 0; node < topo.Nodes; node++ {
		lead := nodeLeader[node]
		leadSocket := topo.PlaceOf(lead).Socket
		socketLeader := make([]int, topo.SocketsPerNode)
		for s := 0; s < topo.SocketsPerNode; s++ {
			if s == leadSocket {
				socketLeader[s] = lead
			} else {
				socketLeader[s] = topo.RanksOnSocket(node, s)[0]
			}
		}
		g := group{lead}
		for s := 0; s < topo.SocketsPerNode; s++ {
			if s != leadSocket {
				g = append(g, socketLeader[s])
			}
		}
		lg.socketGroups = append(lg.socketGroups, g)
		for s := 0; s < topo.SocketsPerNode; s++ {
			cg := group{socketLeader[s]}
			for _, r := range topo.RanksOnSocket(node, s) {
				if r != socketLeader[s] {
					cg = append(cg, r)
				}
			}
			lg.coreGroups = append(lg.coreGroups, cg)
		}
	}
	return lg
}

// phaseBcast runs one phase's broadcast inside a group (position 0 is the
// phase root).
func phaseBcast(c comm.Comm, g group, b trees.Builder, msg comm.Msg, opt Options, alg Algorithm) comm.Msg {
	if len(g) <= 1 || g.pos(c.Rank()) < 0 {
		return msg
	}
	t := b.Build(len(g), 0)
	switch alg {
	case Blocking:
		return bcastBlocking(c, g, t, msg, opt)
	default:
		return bcastNonBlocking(c, g, t, msg, opt)
	}
}

func phaseReduce(c comm.Comm, g group, b trees.Builder, contrib comm.Msg, opt Options, alg Algorithm) comm.Msg {
	if len(g) <= 1 || g.pos(c.Rank()) < 0 {
		return contrib
	}
	t := b.Build(len(g), 0)
	switch alg {
	case Blocking:
		return reduceBlocking(c, g, t, contrib, opt)
	default:
		return reduceNonBlocking(c, g, t, contrib, opt)
	}
}

// BcastMultiLevel broadcasts level-by-level: node leaders first, then
// socket leaders within each node, then within each socket. Each phase is
// a complete sub-broadcast of the whole message (§3.1: "the next level
// cannot start until the upper-level broadcast is finished").
func BcastMultiLevel(c comm.Comm, topo *hwloc.Topology, root int, msg comm.Msg, opt Options, spec MultiLevelSpec) comm.Msg {
	lg := buildLevels(topo, root)
	me := c.Rank()
	cur := msg

	if lg.nodeLeaders.pos(me) >= 0 {
		cur = phaseBcast(c, lg.nodeLeaders, spec.InterNode, cur, opt, spec.Alg)
	}
	for _, g := range lg.socketGroups {
		if g.pos(me) >= 0 {
			cur = phaseBcast(c, g, spec.InterSocket, cur, opt, spec.Alg)
		}
	}
	for _, g := range lg.coreGroups {
		if g.pos(me) >= 0 {
			cur = phaseBcast(c, g, spec.IntraSocket, cur, opt, spec.Alg)
		}
	}
	return cur
}

// ReduceMultiLevel reduces level-by-level, bottom-up: within each socket
// to the socket leader, within each node to the node leader, then across
// node leaders to the root.
func ReduceMultiLevel(c comm.Comm, topo *hwloc.Topology, root int, contrib comm.Msg, opt Options, spec MultiLevelSpec) comm.Msg {
	lg := buildLevels(topo, root)
	me := c.Rank()
	cur := contrib

	for _, g := range lg.coreGroups {
		if g.pos(me) >= 0 {
			cur = phaseReduce(c, g, spec.IntraSocket, cur, opt, spec.Alg)
			if g.pos(me) != 0 {
				return cur // contributed; not a leader
			}
		}
	}
	for _, g := range lg.socketGroups {
		if g.pos(me) >= 0 {
			cur = phaseReduce(c, g, spec.InterSocket, cur, opt, spec.Alg)
			if g.pos(me) != 0 {
				return cur
			}
		}
	}
	if lg.nodeLeaders.pos(me) >= 0 {
		cur = phaseReduce(c, lg.nodeLeaders, spec.InterNode, cur, opt, spec.Alg)
	}
	return cur
}

// Barrier is a dissemination barrier over the whole communicator: in
// round k every rank signals (rank + 2^k) and waits for (rank − 2^k).
func Barrier(c comm.Comm, seq int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.Rank()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		tg := comm.MakeTag(comm.KindBarrier, ((seq%comm.SeqWrap)+comm.SeqWrap)%comm.SeqWrap, round)
		to := (me + k) % n
		from := (me - k + n) % n
		r := c.Irecv(from, tg)
		c.Send(to, tg, comm.Msg{})
		c.Wait(r)
	}
}
