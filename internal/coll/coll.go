// Package coll provides the collective-operation portfolio the paper
// evaluates: broadcast and reduce under three synchronization disciplines
// (§2.2.3's three building blocks) over arbitrary trees, the multi-level
// multi-communicator topology scheme ADAPT is compared against (§3.1),
// and the extended collectives of §2.2.3 (scatter, gather, allgather,
// allreduce, barrier).
//
//	Algorithm 1 — Blocking:     Send/Recv per segment, strictly ordered.
//	Algorithm 2 — NonBlocking:  Isend/Irecv with Waitall barriers.
//	Algorithm 3 — Adapt:        event-driven, no waits (internal/core).
//
// All operations are group-parameterized: a group is an ordered member
// list plus a tree over member positions, which lets the same code run a
// whole-communicator collective or one phase of a multi-level scheme.
package coll

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/trees"
)

// Algorithm selects the synchronization discipline.
type Algorithm int

const (
	// Blocking is the paper's Algorithm 1: blocking Send/Recv per segment.
	Blocking Algorithm = iota
	// NonBlocking is Algorithm 2: Isend/Irecv with per-segment Waitall.
	NonBlocking
	// Adapt is Algorithm 3: the event-driven engine with no waits.
	Adapt
)

func (a Algorithm) String() string {
	switch a {
	case Blocking:
		return "blocking"
	case NonBlocking:
		return "nonblocking"
	case Adapt:
		return "adapt"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options re-exports the engine tuning for the whole package.
type Options = core.Options

// DefaultOptions returns the standard tuning.
func DefaultOptions() Options { return core.DefaultOptions() }

// Bcast broadcasts msg from t.Root over tree t with the given discipline.
// At the root msg is the payload; elsewhere msg.Size declares the length.
func Bcast(c comm.Comm, t *trees.Tree, msg comm.Msg, opt Options, alg Algorithm) comm.Msg {
	switch alg {
	case Adapt:
		return core.Bcast(c, t, msg, opt)
	case Blocking:
		return bcastBlocking(c, wholeGroup(c), t, msg, opt)
	case NonBlocking:
		return bcastNonBlocking(c, wholeGroup(c), t, msg, opt)
	}
	panic("coll: unknown algorithm")
}

// Reduce reduces every rank's contribution to t.Root under opt.Op.
// contrib.Data, when present, is folded in place — pass a private copy.
func Reduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options, alg Algorithm) comm.Msg {
	switch alg {
	case Adapt:
		return core.Reduce(c, t, contrib, opt)
	case Blocking:
		return reduceBlocking(c, wholeGroup(c), t, contrib, opt)
	case NonBlocking:
		return reduceNonBlocking(c, wholeGroup(c), t, contrib, opt)
	}
	panic("coll: unknown algorithm")
}

// group is an ordered member list; trees index into it by position.
type group []int

func wholeGroup(c comm.Comm) group {
	g := make(group, c.Size())
	for i := range g {
		g[i] = i
	}
	return g
}

// pos returns the caller's position in the group, or -1.
func (g group) pos(rank int) int {
	for i, r := range g {
		if r == rank {
			return i
		}
	}
	return -1
}

// bcastBlocking is the paper's Figure 1: every segment is pushed with
// blocking sends in strict child order; an intermediate rank receives a
// segment, forwards it to all children, and only then receives the next.
func bcastBlocking(c comm.Comm, g group, t *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	me := g.pos(c.Rank())
	if me < 0 {
		return msg
	}
	segs := comm.Segments(msg, opt.SegSize)
	parent := t.Parent[me]
	children := t.Children[me]
	var outData []byte
	if me != t.Root {
		outData = nil
	} else {
		outData = msg.Data
	}
	for _, sg := range segs {
		cur := sg.Msg
		if me != t.Root {
			st := c.Recv(g[parent], opt.TagOf(comm.KindBcast, sg.Index))
			cur = st.Msg
			if cur.Data != nil {
				if outData == nil {
					outData = make([]byte, msg.Size)
				}
				copy(outData[sg.Offset:], cur.Data)
			}
		}
		for _, ch := range children {
			c.Send(g[ch], opt.TagOf(comm.KindBcast, sg.Index), cur)
		}
	}
	return comm.Msg{Data: outData, Size: msg.Size, Space: msg.Space}
}

// bcastNonBlocking is the paper's Figure 3: non-blocking operations with
// Waitall per segment round. Non-roots keep two receives posted to absorb
// out-of-order segments; intermediates forward each received segment with
// Isends and a Waitall before waiting for the next — the synchronization
// dependency ADAPT removes.
func bcastNonBlocking(c comm.Comm, g group, t *trees.Tree, msg comm.Msg, opt Options) comm.Msg {
	me := g.pos(c.Rank())
	if me < 0 {
		return msg
	}
	segs := comm.Segments(msg, opt.SegSize)
	parent := t.Parent[me]
	children := t.Children[me]

	if me == t.Root {
		for _, sg := range segs {
			rs := make([]comm.Request, 0, len(children))
			for _, ch := range children {
				rs = append(rs, c.Isend(g[ch], opt.TagOf(comm.KindBcast, sg.Index), sg.Msg))
			}
			c.WaitAll(rs) // the Figure-3 Waitall
		}
		return msg
	}

	var outData []byte
	recvs := make([]comm.Request, len(segs))
	post := func(i int) {
		if i < len(segs) {
			recvs[i] = c.Irecv(g[parent], opt.TagOf(comm.KindBcast, i))
		}
	}
	post(0)
	post(1)
	for i, sg := range segs {
		st := c.Wait(recvs[i])
		post(i + 2)
		if st.Msg.Data != nil {
			if outData == nil {
				outData = make([]byte, msg.Size)
			}
			copy(outData[sg.Offset:], st.Msg.Data)
		}
		if len(children) > 0 {
			rs := make([]comm.Request, 0, len(children))
			for _, ch := range children {
				rs = append(rs, c.Isend(g[ch], opt.TagOf(comm.KindBcast, sg.Index), st.Msg))
			}
			c.WaitAll(rs)
		}
	}
	return comm.Msg{Data: outData, Size: msg.Size, Space: msg.Space}
}

// reduceBlocking: per segment, receive every child's contribution with
// blocking receives in child order, fold, then push up with a blocking
// send.
func reduceBlocking(c comm.Comm, g group, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	me := g.pos(c.Rank())
	if me < 0 {
		return contrib
	}
	segs := comm.Segments(contrib, opt.SegSize)
	parent := t.Parent[me]
	children := t.Children[me]
	for _, sg := range segs {
		for _, ch := range children {
			st := c.Recv(g[ch], opt.TagOf(comm.KindReduce, sg.Index))
			fold(c, opt, sg.Msg, st.Msg)
		}
		if parent != -1 {
			c.Send(g[parent], opt.TagOf(comm.KindReduce, sg.Index), sg.Msg)
		}
	}
	return rootResult(me == t.Root, contrib)
}

// reduceNonBlocking: per segment, Irecv from every child, Waitall, fold,
// Isend up, Waitall — Algorithm 2 applied to the reduction flow.
func reduceNonBlocking(c comm.Comm, g group, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	me := g.pos(c.Rank())
	if me < 0 {
		return contrib
	}
	segs := comm.Segments(contrib, opt.SegSize)
	parent := t.Parent[me]
	children := t.Children[me]
	var up comm.Request
	for _, sg := range segs {
		rs := make([]comm.Request, 0, len(children))
		for _, ch := range children {
			rs = append(rs, c.Irecv(g[ch], opt.TagOf(comm.KindReduce, sg.Index)))
		}
		c.WaitAll(rs)
		for _, r := range rs {
			st, _ := r.Test()
			fold(c, opt, sg.Msg, st.Msg)
		}
		if parent != -1 {
			if up != nil {
				c.Wait(up) // previous segment must be out the door
			}
			up = c.Isend(g[parent], opt.TagOf(comm.KindReduce, sg.Index), sg.Msg)
		}
	}
	if up != nil {
		c.Wait(up)
	}
	return rootResult(me == t.Root, contrib)
}

// fold accumulates src into dst (real arithmetic when payloads are real,
// cost charge always, scaled by the library's vectorization width).
func fold(c comm.Comm, opt Options, dst, src comm.Msg) {
	if dst.Data != nil && src.Data != nil {
		opt.Op.Apply(dst.Data, src.Data, opt.Datatype)
	}
	c.Compute(opt.ReduceCost(src.Size), comm.ComputeReduce)
}

func rootResult(isRoot bool, contrib comm.Msg) comm.Msg {
	if isRoot {
		return contrib
	}
	return comm.Msg{Size: contrib.Size, Space: contrib.Space}
}
