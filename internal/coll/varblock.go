package coll

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/trees"
)

// Variable-block scatter/gather (MPI_Scatterv / MPI_Gatherv): rank r's
// block has Counts[r] bytes. The tree walk matches Scatter/Gather in
// internal/core but blocks are ragged, so ranges come from a prefix-sum
// layout instead of a fixed block size.

// Layout precomputes offsets for a Counts vector.
type Layout struct {
	Counts  []int
	Offsets []int
	Total   int
}

// NewLayout validates counts (non-negative, one per rank) and prefix-sums
// them.
func NewLayout(counts []int) Layout {
	l := Layout{Counts: counts, Offsets: make([]int, len(counts))}
	for r, n := range counts {
		if n < 0 {
			panic(fmt.Sprintf("coll: negative count %d for rank %d", n, r))
		}
		l.Offsets[r] = l.Total
		l.Total += n
	}
	return l
}

// Block slices rank r's range out of a full buffer (nil-safe).
func (l Layout) Block(buf []byte, r int) []byte {
	if buf == nil {
		return nil
	}
	return buf[l.Offsets[r] : l.Offsets[r]+l.Counts[r]]
}

// subtreeBytes sums the counts across r's subtree.
func subtreeBytes(t *trees.Tree, l Layout, r int) int {
	total := l.Counts[r]
	for _, c := range t.Children[r] {
		total += subtreeBytes(t, l, c)
	}
	return total
}

// Scatterv distributes root's buffer so rank r receives its Counts[r]-byte
// block. Blocks travel as whole subtree blobs down tree t (blocking
// discipline; the event-driven fixed-block variant is core.Scatter).
// At the root msg must hold layout.Total bytes (or declare that size).
func Scatterv(c comm.Comm, t *trees.Tree, layout Layout, msg comm.Msg, opt Options) comm.Msg {
	me := c.Rank()
	if len(layout.Counts) != c.Size() {
		panic(fmt.Sprintf("coll: layout has %d counts for %d ranks", len(layout.Counts), c.Size()))
	}
	tag := opt.TagOf(comm.KindScatter, 0)

	var order func(r int) []int
	order = func(r int) []int {
		out := []int{r}
		for _, ch := range t.Children[r] {
			out = append(out, order(ch)...)
		}
		return out
	}

	// My inbound blob: my subtree's blocks in DFS order.
	var blob []byte
	blobSize := subtreeBytes(t, layout, me)
	if me == t.Root {
		if msg.Size != layout.Total {
			panic(fmt.Sprintf("coll: scatterv buffer %dB != layout total %dB", msg.Size, layout.Total))
		}
		if msg.Data != nil {
			blob = make([]byte, blobSize)
			pos := 0
			for _, r := range order(me) {
				copy(blob[pos:], layout.Block(msg.Data, r))
				pos += layout.Counts[r]
			}
		}
	} else {
		st := c.Recv(t.Parent[me], tag)
		if st.Msg.Size != blobSize {
			panic(fmt.Sprintf("coll: rank %d received %dB subtree blob, want %dB", me, st.Msg.Size, blobSize))
		}
		blob = st.Msg.Data
	}

	// Forward each child its contiguous DFS range.
	pos := layout.Counts[me]
	for _, ch := range t.Children[me] {
		span := subtreeBytes(t, layout, ch)
		out := comm.Msg{Size: span, Space: msg.Space}
		if blob != nil {
			out.Data = blob[pos : pos+span]
		}
		c.Send(ch, tag, out)
		pos += span
	}
	mine := comm.Msg{Size: layout.Counts[me], Space: msg.Space}
	if blob != nil {
		mine.Data = blob[:layout.Counts[me]]
	}
	return mine
}

// Gatherv collects rank r's Counts[r]-byte block to the root in rank
// order (the reverse of Scatterv).
func Gatherv(c comm.Comm, t *trees.Tree, layout Layout, contrib comm.Msg, opt Options) comm.Msg {
	me := c.Rank()
	if len(layout.Counts) != c.Size() {
		panic(fmt.Sprintf("coll: layout has %d counts for %d ranks", len(layout.Counts), c.Size()))
	}
	if contrib.Size != layout.Counts[me] {
		panic(fmt.Sprintf("coll: rank %d contributes %dB, layout says %dB", me, contrib.Size, layout.Counts[me]))
	}
	tag := opt.TagOf(comm.KindGather, 0)

	var order func(r int) []int
	order = func(r int) []int {
		out := []int{r}
		for _, ch := range t.Children[r] {
			out = append(out, order(ch)...)
		}
		return out
	}

	blobSize := subtreeBytes(t, layout, me)
	var blob []byte
	if contrib.Data != nil {
		blob = make([]byte, blobSize)
		copy(blob, contrib.Data)
	}
	pos := layout.Counts[me]
	for _, ch := range t.Children[me] {
		span := subtreeBytes(t, layout, ch)
		st := c.Recv(ch, tag)
		if st.Msg.Size != span {
			panic(fmt.Sprintf("coll: rank %d got %dB from child %d, want %dB", me, st.Msg.Size, ch, span))
		}
		if st.Msg.Data != nil && blob != nil {
			copy(blob[pos:], st.Msg.Data)
		}
		pos += span
	}
	out := comm.Msg{Size: blobSize, Space: contrib.Space}
	out.Data = blob
	if me != t.Root {
		c.Send(t.Parent[me], tag, out)
		return comm.Msg{Size: contrib.Size, Space: contrib.Space}
	}
	// Root: DFS order → rank order.
	final := comm.Msg{Size: layout.Total, Space: contrib.Space}
	if blob != nil {
		ordered := make([]byte, layout.Total)
		pos := 0
		for _, r := range order(me) {
			copy(ordered[layout.Offsets[r]:layout.Offsets[r]+layout.Counts[r]], blob[pos:pos+layout.Counts[r]])
			pos += layout.Counts[r]
		}
		final.Data = ordered
	}
	return final
}
