package coll

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"adapt/internal/comm"
	"adapt/internal/hwloc"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

func payload(n int, seed int64) []byte {
	b := make([]byte, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// All three disciplines must deliver identical broadcast payloads.
func TestBcastAllDisciplinesLive(t *testing.T) {
	algs := []Algorithm{Blocking, NonBlocking, Adapt}
	sizes := []int{0, 1, 999, 100_000}
	for _, alg := range algs {
		for _, sz := range sizes {
			alg, sz := alg, sz
			t.Run(fmt.Sprintf("%s/%dB", alg, sz), func(t *testing.T) {
				t.Parallel()
				const n = 12
				tree := trees.Binomial(n, 2)
				want := payload(sz, int64(sz))
				w := runtime.NewWorld(n)
				var mu sync.Mutex
				results := map[int][]byte{}
				w.Run(func(c *runtime.Comm) {
					opt := DefaultOptions()
					opt.SegSize = 8 << 10
					var msg comm.Msg
					if c.Rank() == 2 {
						msg = comm.Bytes(append([]byte(nil), want...))
					} else {
						msg = comm.Sized(sz)
					}
					out := Bcast(c, tree, msg, opt, alg)
					mu.Lock()
					results[c.Rank()] = out.Data
					mu.Unlock()
				})
				for r := 0; r < n; r++ {
					if sz == 0 {
						continue
					}
					if !bytes.Equal(results[r], want) {
						t.Errorf("rank %d: mismatch under %s", r, alg)
					}
				}
			})
		}
	}
}

// All three disciplines must produce the same reduction result.
func TestReduceAllDisciplinesLive(t *testing.T) {
	for _, alg := range []Algorithm{Blocking, NonBlocking, Adapt} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n, ne = 9, 3000
			tree := trees.Kary(3)(n, 0)
			w := runtime.NewWorld(n)
			var got []int64
			var mu sync.Mutex
			w.Run(func(c *runtime.Comm) {
				vals := make([]int64, ne)
				for i := range vals {
					vals[i] = int64((c.Rank() + 1) * (i + 1))
				}
				opt := DefaultOptions()
				opt.SegSize = 4 << 10
				opt.Datatype = comm.Int64
				out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt, alg)
				if c.Rank() == 0 {
					mu.Lock()
					got = comm.DecodeInt64s(out.Data)
					mu.Unlock()
				}
			})
			for i := 0; i < ne; i++ {
				want := int64(0)
				for r := 0; r < n; r++ {
					want += int64((r + 1) * (i + 1))
				}
				if got[i] != want {
					t.Fatalf("%s elem %d: got %d, want %d", alg, i, got[i], want)
				}
			}
		})
	}
}

func TestBcastMultiLevelLive(t *testing.T) {
	topo := hwloc.New(2, 2, 4) // 16 ranks
	spec := MultiLevelSpec{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "flat", Build: trees.Flat},
		Alg:         NonBlocking,
	}
	want := payload(50_000, 9)
	for _, root := range []int{0, 5} {
		root := root
		w := runtime.NewWorld(topo.Size())
		var mu sync.Mutex
		results := map[int][]byte{}
		w.Run(func(c *runtime.Comm) {
			opt := DefaultOptions()
			opt.SegSize = 8 << 10
			var msg comm.Msg
			if c.Rank() == root {
				msg = comm.Bytes(append([]byte(nil), want...))
			} else {
				msg = comm.Sized(len(want))
			}
			out := BcastMultiLevel(c, topo, root, msg, opt, spec)
			mu.Lock()
			results[c.Rank()] = out.Data
			mu.Unlock()
		})
		for r := 0; r < topo.Size(); r++ {
			if !bytes.Equal(results[r], want) {
				t.Errorf("root %d rank %d: multi-level bcast mismatch", root, r)
			}
		}
	}
}

func TestReduceMultiLevelLive(t *testing.T) {
	topo := hwloc.New(2, 2, 2) // 8 ranks
	spec := MultiLevelSpec{
		InterNode:   trees.Builder{Name: "binomial", Build: trees.Binomial},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "binomial", Build: trees.Binomial},
		Alg:         Blocking,
	}
	const ne = 500
	w := runtime.NewWorld(topo.Size())
	var got []int64
	var mu sync.Mutex
	w.Run(func(c *runtime.Comm) {
		vals := make([]int64, ne)
		for i := range vals {
			vals[i] = int64(c.Rank() ^ i)
		}
		opt := DefaultOptions()
		opt.SegSize = 2 << 10
		opt.Datatype = comm.Int64
		opt.Op = comm.OpBXor
		out := ReduceMultiLevel(c, topo, 0, comm.Bytes(comm.EncodeInt64s(vals)), opt, spec)
		if c.Rank() == 0 {
			mu.Lock()
			got = comm.DecodeInt64s(out.Data)
			mu.Unlock()
		}
	})
	for i := 0; i < ne; i++ {
		want := int64(0)
		for r := 0; r < topo.Size(); r++ {
			want ^= int64(r ^ i)
		}
		if got[i] != want {
			t.Fatalf("elem %d: got %d, want %d", i, got[i], want)
		}
	}
}

func TestBarrierLive(t *testing.T) {
	const n = 10
	w := runtime.NewWorld(n)
	var phase [n]int32
	w.Run(func(c *runtime.Comm) {
		for round := 0; round < 5; round++ {
			atomic.AddInt32(&phase[c.Rank()], 1)
			Barrier(c, round)
			// After the barrier every rank must have entered this round.
			for r := 0; r < n; r++ {
				if p := atomic.LoadInt32(&phase[r]); int(p) < round+1 {
					t.Errorf("rank %d saw rank %d at phase %d in round %d", c.Rank(), r, p, round)
				}
			}
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		for _, root := range []int{0, n - 1} {
			n, root := n, root
			t.Run(fmt.Sprintf("p%d/root%d", n, root), func(t *testing.T) {
				t.Parallel()
				blk := 96
				full := payload(blk*n, int64(n*31+root))
				w := runtime.NewWorld(n)
				var mu sync.Mutex
				chunks := map[int][]byte{}
				var gathered []byte
				w.Run(func(c *runtime.Comm) {
					opt := DefaultOptions()
					var msg comm.Msg
					if c.Rank() == root {
						msg = comm.Bytes(append([]byte(nil), full...))
					} else {
						msg = comm.Sized(len(full))
					}
					mine := Scatter(c, root, msg, opt)
					mu.Lock()
					chunks[c.Rank()] = append([]byte(nil), mine.Data...)
					mu.Unlock()
					opt2 := opt
					opt2.Seq++
					out := Gather(c, root, mine, opt2)
					if c.Rank() == root {
						mu.Lock()
						gathered = out.Data
						mu.Unlock()
					}
				})
				for r := 0; r < n; r++ {
					if !bytes.Equal(chunks[r], full[r*blk:(r+1)*blk]) {
						t.Errorf("rank %d got wrong scatter chunk", r)
					}
				}
				if !bytes.Equal(gathered, full) {
					t.Errorf("gather(scatter(x)) != x")
				}
			})
		}
	}
}

func TestAllgatherLive(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			t.Parallel()
			blk := 64
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			results := map[int][]byte{}
			w.Run(func(c *runtime.Comm) {
				mine := payload(blk, int64(c.Rank()))
				out := Allgather(c, comm.Bytes(mine), DefaultOptions())
				mu.Lock()
				results[c.Rank()] = out.Data
				mu.Unlock()
			})
			var want []byte
			for r := 0; r < n; r++ {
				want = append(want, payload(blk, int64(r))...)
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(results[r], want) {
					t.Errorf("rank %d allgather mismatch", r)
				}
			}
		})
	}
}

func TestBcastScatterAllgather(t *testing.T) {
	for _, sz := range []int{1000, 4096, 99_999} {
		sz := sz
		t.Run(fmt.Sprintf("%dB", sz), func(t *testing.T) {
			t.Parallel()
			const n, root = 6, 1
			want := payload(sz, int64(sz))
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			results := map[int][]byte{}
			w.Run(func(c *runtime.Comm) {
				var msg comm.Msg
				if c.Rank() == root {
					msg = comm.Bytes(append([]byte(nil), want...))
				} else {
					msg = comm.Sized(sz)
				}
				out := BcastScatterAllgather(c, root, msg, DefaultOptions())
				mu.Lock()
				results[c.Rank()] = out.Data
				mu.Unlock()
			})
			for r := 0; r < n; r++ {
				if !bytes.Equal(results[r], want) {
					t.Errorf("rank %d scatter-allgather bcast mismatch (%d vs %d bytes)", r, len(results[r]), len(want))
				}
			}
		})
	}
}

func TestAllreduceTreeAndRingAgree(t *testing.T) {
	const n, ne = 8, 1024
	tree := trees.Binomial(n, 0)
	w := runtime.NewWorld(n)
	var mu sync.Mutex
	treeRes := map[int][]int64{}
	ringRes := map[int][]int64{}
	w.Run(func(c *runtime.Comm) {
		vals := make([]int64, ne)
		for i := range vals {
			vals[i] = int64(c.Rank()*7 + i)
		}
		opt := DefaultOptions()
		opt.SegSize = 2 << 10
		opt.Datatype = comm.Int64
		a := Allreduce(c, tree, comm.Bytes(comm.EncodeInt64s(vals)), opt)
		opt2 := opt
		opt2.Seq = 100
		b := AllreduceRing(c, comm.Bytes(comm.EncodeInt64s(vals)), opt2)
		mu.Lock()
		treeRes[c.Rank()] = comm.DecodeInt64s(a.Data)
		ringRes[c.Rank()] = comm.DecodeInt64s(b.Data)
		mu.Unlock()
	})
	for i := 0; i < ne; i++ {
		want := int64(0)
		for r := 0; r < n; r++ {
			want += int64(r*7 + i)
		}
		for r := 0; r < n; r++ {
			if treeRes[r][i] != want {
				t.Fatalf("tree allreduce rank %d elem %d: %d != %d", r, i, treeRes[r][i], want)
			}
			if ringRes[r][i] != want {
				t.Fatalf("ring allreduce rank %d elem %d: %d != %d", r, i, ringRes[r][i], want)
			}
		}
	}
}

func TestChunk(t *testing.T) {
	// Chunks tile the buffer exactly.
	for _, c := range []struct{ n, p int }{{100, 7}, {0, 3}, {5, 5}, {13, 4}} {
		total := 0
		for r := 0; r < c.p; r++ {
			off, ln := chunk(c.n, c.p, r)
			if off != total {
				t.Errorf("chunk(%d,%d,%d) offset %d, want %d", c.n, c.p, r, off, total)
			}
			total += ln
		}
		if total != c.n {
			t.Errorf("chunks of (%d,%d) sum to %d", c.n, c.p, total)
		}
	}
}

func TestVecWidthScalesReduceCost(t *testing.T) {
	// On the live runtime VecWidth only changes cost accounting (a no-op
	// there); verify results stay identical and the accounting helper
	// divides as documented.
	opt := DefaultOptions()
	if opt.ReduceCost(1000) != 1000 {
		t.Fatalf("scalar cost = %d", opt.ReduceCost(1000))
	}
	opt.VecWidth = 2
	if opt.ReduceCost(1000) != 500 {
		t.Fatalf("vectorized cost = %d", opt.ReduceCost(1000))
	}
	const n = 6
	tree := trees.Binomial(n, 0)
	for _, vec := range []int{1, 4} {
		vec := vec
		w := runtime.NewWorld(n)
		var got []int64
		var mu sync.Mutex
		w.Run(func(c *runtime.Comm) {
			o := DefaultOptions()
			o.Datatype = comm.Int64
			o.VecWidth = vec
			out := Reduce(c, tree, comm.Bytes(comm.EncodeInt64s([]int64{int64(c.Rank())})), o, NonBlocking)
			if c.Rank() == 0 {
				mu.Lock()
				got = comm.DecodeInt64s(out.Data)
				mu.Unlock()
			}
		})
		if got[0] != n*(n-1)/2 {
			t.Fatalf("vec=%d: sum = %d", vec, got[0])
		}
	}
}

func TestReduceScatterRing(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			t.Parallel()
			const perBlk = 50
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			results := map[int][]int64{}
			w.Run(func(c *runtime.Comm) {
				vals := make([]int64, perBlk*n)
				for i := range vals {
					vals[i] = int64((c.Rank() + 1) * (i + 1))
				}
				opt := DefaultOptions()
				opt.Datatype = comm.Int64
				out := ReduceScatterRing(c, comm.Bytes(comm.EncodeInt64s(vals)), opt)
				mu.Lock()
				results[c.Rank()] = comm.DecodeInt64s(out.Data)
				mu.Unlock()
			})
			for r := 0; r < n; r++ {
				got := results[r]
				if len(got) != perBlk {
					t.Fatalf("rank %d block has %d elems, want %d", r, len(got), perBlk)
				}
				for j := 0; j < perBlk; j++ {
					i := r*perBlk + j // element index within the full buffer
					want := int64(0)
					for s := 0; s < n; s++ {
						want += int64((s + 1) * (i + 1))
					}
					if got[j] != want {
						t.Fatalf("rank %d elem %d: got %d, want %d", r, j, got[j], want)
					}
				}
			}
		})
	}
}

func TestAllreduceRabenseifnerMatchesRing(t *testing.T) {
	const n, ne = 8, 800
	w := runtime.NewWorld(n)
	var mu sync.Mutex
	rab := map[int][]int64{}
	ring := map[int][]int64{}
	w.Run(func(c *runtime.Comm) {
		vals := make([]int64, ne)
		for i := range vals {
			vals[i] = int64(c.Rank()*13 - i)
		}
		opt := DefaultOptions()
		opt.Datatype = comm.Int64
		a := AllreduceRabenseifner(c, comm.Bytes(comm.EncodeInt64s(vals)), opt)
		opt2 := opt
		opt2.Seq = 50
		b := AllreduceRing(c, comm.Bytes(comm.EncodeInt64s(vals)), opt2)
		mu.Lock()
		rab[c.Rank()] = comm.DecodeInt64s(a.Data)
		ring[c.Rank()] = comm.DecodeInt64s(b.Data)
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		for i := 0; i < ne; i++ {
			if rab[r][i] != ring[r][i] {
				t.Fatalf("rank %d elem %d: rabenseifner %d != ring %d", r, i, rab[r][i], ring[r][i])
			}
		}
	}
}

func TestScattervGathervRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("p%d", n), func(t *testing.T) {
			t.Parallel()
			counts := make([]int, n)
			for r := range counts {
				counts[r] = 100*r + 7 // ragged, includes small blocks
			}
			layout := NewLayout(counts)
			full := payload(layout.Total, int64(n))
			tree := trees.Binomial(n, 0)
			w := runtime.NewWorld(n)
			var mu sync.Mutex
			chunks := map[int][]byte{}
			var gathered []byte
			w.Run(func(c *runtime.Comm) {
				opt := DefaultOptions()
				var msg comm.Msg
				if c.Rank() == 0 {
					msg = comm.Bytes(append([]byte(nil), full...))
				} else {
					msg = comm.Sized(layout.Total)
				}
				mine := Scatterv(c, tree, layout, msg, opt)
				mu.Lock()
				chunks[c.Rank()] = append([]byte(nil), mine.Data...)
				mu.Unlock()
				opt2 := opt
				opt2.Seq++
				out := Gatherv(c, tree, layout, mine, opt2)
				if c.Rank() == 0 {
					mu.Lock()
					gathered = out.Data
					mu.Unlock()
				}
			})
			for r := 0; r < n; r++ {
				if !bytes.Equal(chunks[r], layout.Block(full, r)) {
					t.Errorf("rank %d got wrong ragged block (%d bytes)", r, len(chunks[r]))
				}
			}
			if !bytes.Equal(gathered, full) {
				t.Error("gatherv(scatterv(x)) != x")
			}
		})
	}
}

func TestLayoutValidation(t *testing.T) {
	l := NewLayout([]int{3, 0, 5})
	if l.Total != 8 || l.Offsets[2] != 3 {
		t.Fatalf("layout = %+v", l)
	}
	if l.Block(nil, 1) != nil {
		t.Fatal("nil buffer must slice to nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative count must panic")
		}
	}()
	NewLayout([]int{1, -1})
}

func TestScattervZeroCountRank(t *testing.T) {
	// A rank with a zero-byte block still participates in forwarding.
	const n = 5
	layout := NewLayout([]int{64, 0, 64, 0, 64})
	full := payload(layout.Total, 77)
	tree := trees.Chain(n, 0) // zero-count ranks sit mid-chain
	w := runtime.NewWorld(n)
	var mu sync.Mutex
	sizes := map[int]int{}
	w.Run(func(c *runtime.Comm) {
		var msg comm.Msg
		if c.Rank() == 0 {
			msg = comm.Bytes(append([]byte(nil), full...))
		} else {
			msg = comm.Sized(layout.Total)
		}
		mine := Scatterv(c, tree, layout, msg, DefaultOptions())
		mu.Lock()
		sizes[c.Rank()] = mine.Size
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		if sizes[r] != layout.Counts[r] {
			t.Fatalf("rank %d block size %d, want %d", r, sizes[r], layout.Counts[r])
		}
	}
}
