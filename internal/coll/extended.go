package coll

import (
	"fmt"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/trees"
)

// This file extends the event-driven building block to the other
// collectives the paper sketches in §2.2.3: scatter, gather, allgather,
// the scatter+allgather large-message broadcast, and allreduce.

// chunk returns rank r's block of an n-byte buffer split across P ranks:
// offset and length (the last block absorbs the remainder).
func chunk(n, p, r int) (off, ln int) {
	base := n / p
	off = base * r
	if r == p-1 {
		ln = n - off
	} else {
		ln = base
	}
	return off, ln
}

// Scatter distributes root's buffer in rank-order blocks: rank r receives
// chunk r. It walks a binomial tree: each parent forwards to a child the
// contiguous range of blocks owned by the child's subtree. Returns this
// rank's chunk.
func Scatter(c comm.Comm, root int, msg comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	me := c.Rank()
	t := trees.Binomial(n, root)
	tag := func() comm.Tag { return opt.TagOf(comm.KindScatter, 0) }

	// subtreeRanks lists the ranks in r's subtree (contiguous in virtual
	// rank space for a binomial tree, but we collect explicitly to stay
	// correct for any root).
	var subtree func(r int) []int
	subtree = func(r int) []int {
		out := []int{r}
		for _, ch := range t.Children[r] {
			out = append(out, subtree(ch)...)
		}
		return out
	}

	// recvBuf holds this subtree's blocks in subtree (DFS) order. The
	// root's input is rank-ordered, so permute it first.
	var recvBuf comm.Msg
	if me == root {
		recvBuf = msg
		if msg.Data != nil {
			reordered := make([]byte, msg.Size)
			pos := 0
			for _, r := range subtree(root) {
				off, ln := chunk(msg.Size, n, r)
				copy(reordered[pos:pos+ln], msg.Data[off:off+ln])
				pos += ln
			}
			recvBuf = comm.Msg{Data: reordered, Size: msg.Size, Space: msg.Space}
		}
	} else {
		st := c.Recv(t.Parent[me], tag())
		recvBuf = st.Msg
	}
	// recvBuf holds the blocks for this whole subtree, ordered by the
	// subtree listing. Slice out each child's range and forward.
	mine := subtree(me)
	offsetOf := func(rank int) int {
		total := 0
		for _, r := range mine {
			if r == rank {
				return total
			}
			_, ln := chunk(msg.Size, n, r)
			total += ln
		}
		panic("coll: rank not in own subtree")
	}
	sliceFor := func(ranks []int) comm.Msg {
		start := offsetOf(ranks[0])
		total := 0
		for _, r := range ranks {
			_, ln := chunk(msg.Size, n, r)
			total += ln
		}
		out := comm.Msg{Size: total, Space: msg.Space}
		if recvBuf.Data != nil {
			out.Data = recvBuf.Data[start : start+total]
		}
		return out
	}
	for _, ch := range t.Children[me] {
		c.Send(ch, tag(), sliceFor(subtree(ch)))
	}
	return sliceFor([]int{me})
}

// Gather collects every rank's equally-sized block to the root in rank
// order along a binomial tree (the reverse of Scatter). Returns the
// concatenated buffer at the root.
func Gather(c comm.Comm, root int, contrib comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	me := c.Rank()
	t := trees.Binomial(n, root)
	tag := func() comm.Tag { return opt.TagOf(comm.KindGather, 0) }

	var subtree func(r int) []int
	subtree = func(r int) []int {
		out := []int{r}
		for _, ch := range t.Children[r] {
			out = append(out, subtree(ch)...)
		}
		return out
	}
	mine := subtree(me)
	total := contrib.Size * len(mine)
	var data []byte
	if contrib.Data != nil {
		data = make([]byte, total)
		copy(data, contrib.Data)
	}
	// Children's subtree blocks land after ours, in child order.
	off := contrib.Size
	for _, ch := range t.Children[me] {
		st := c.Recv(ch, tag())
		if st.Msg.Data != nil && data != nil {
			copy(data[off:], st.Msg.Data)
		}
		off += st.Msg.Size
	}
	blob := comm.Msg{Data: data, Size: total, Space: contrib.Space}
	if me != root {
		c.Send(t.Parent[me], tag(), blob)
		return comm.Msg{Size: contrib.Size, Space: contrib.Space}
	}
	// Root: reorder subtree-order blocks into rank order.
	if data == nil {
		return blob
	}
	ordered := make([]byte, total)
	pos := 0
	for _, r := range mine {
		copy(ordered[r*contrib.Size:(r+1)*contrib.Size], data[pos:pos+contrib.Size])
		pos += contrib.Size
	}
	return comm.Msg{Data: ordered, Size: total, Space: contrib.Space}
}

// Allgather shares every rank's equally-sized block with everyone via the
// ring algorithm: P−1 steps, each rank forwarding the block it received
// in the previous step. Returns the rank-ordered concatenation.
func Allgather(c comm.Comm, contrib comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	me := c.Rank()
	total := contrib.Size * n
	var data []byte
	if contrib.Data != nil {
		data = make([]byte, total)
		copy(data[me*contrib.Size:], contrib.Data)
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	cur := contrib
	curOwner := me
	for step := 0; step < n-1; step++ {
		tg := opt.TagOf(comm.KindAllgather, step)
		r := c.Irecv(left, tg)
		c.Send(right, tg, cur)
		st := c.Wait(r)
		curOwner = (curOwner - 1 + n) % n
		cur = st.Msg
		if st.Msg.Data != nil && data != nil {
			copy(data[curOwner*contrib.Size:], st.Msg.Data)
		}
	}
	return comm.Msg{Data: data, Size: total, Space: contrib.Space}
}

// BcastScatterAllgather is the §2.2.3 large-message broadcast: scatter
// the buffer into P blocks, then allgather them. Sizes that do not divide
// evenly are handled by the uneven final chunk (allgather then uses the
// max block size on the wire).
func BcastScatterAllgather(c comm.Comm, root int, msg comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	if n == 1 {
		return msg
	}
	if msg.Size%n != 0 {
		// Keep wire blocks equal: pad the logical size up; receivers trim.
		padded := ((msg.Size + n - 1) / n) * n
		var data []byte
		if msg.Data != nil && c.Rank() == root {
			data = make([]byte, padded)
			copy(data, msg.Data)
		}
		out := BcastScatterAllgather(c, root, comm.Msg{Data: data, Size: padded, Space: msg.Space}, opt)
		if out.Data != nil {
			out.Data = out.Data[:msg.Size]
		}
		out.Size = msg.Size
		return out
	}
	mine := Scatter(c, root, msg, opt)
	return Allgather(c, mine, opt)
}

// Allreduce reduces every rank's contribution and leaves the result on
// all ranks: an ADAPT reduce to rank 0 followed by an ADAPT broadcast
// over the same tree reversed (the composition §2.2.3 describes).
// contrib.Data, when present, is folded in place — pass a private copy.
func Allreduce(c comm.Comm, t *trees.Tree, contrib comm.Msg, opt Options) comm.Msg {
	if t.Root != 0 {
		panic(fmt.Sprintf("coll: Allreduce expects a rank-0-rooted tree, got root %d", t.Root))
	}
	optB := opt
	optB.Seq = opt.Seq + 1 // disjoint tags for the broadcast half
	red := core.Reduce(c, t, contrib, opt)
	var msg comm.Msg
	if c.Rank() == 0 {
		msg = red
	} else {
		msg = comm.Msg{Size: contrib.Size, Space: contrib.Space}
	}
	return core.Bcast(c, t, msg, optB)
}

// AllreduceRing is the bandwidth-optimal ring allreduce (reduce-scatter
// followed by allgather), the algorithm deep-learning frameworks favour —
// the paper's intro motivates exactly this workload. contrib.Data is
// folded into freshly allocated state; the input is not modified.
func AllreduceRing(c comm.Comm, contrib comm.Msg, opt Options) comm.Msg {
	n := c.Size()
	me := c.Rank()
	if n == 1 {
		return contrib
	}
	if contrib.Data != nil && contrib.Size%(n*opt.Datatype.ElemSize()) != 0 {
		panic("coll: AllreduceRing needs size divisible by ranks×elemsize")
	}
	blk := contrib.Size / n
	buf := contrib
	if contrib.Data != nil {
		buf = comm.Bytes(append([]byte(nil), contrib.Data...))
	}
	slice := func(i int) comm.Msg {
		out := comm.Msg{Size: blk, Space: contrib.Space}
		if buf.Data != nil {
			out.Data = buf.Data[i*blk : (i+1)*blk]
		}
		return out
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	// Reduce-scatter: after step s, block (me−s−1 mod n) holds the fold of
	// s+2 contributions; after n−1 steps block (me+1 mod n) is complete.
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		tg := opt.TagOf(comm.KindAllreduce, step)
		r := c.Irecv(left, tg)
		c.Send(right, tg, slice(sendIdx))
		st := c.Wait(r)
		if st.Msg.Data != nil && buf.Data != nil {
			opt.Op.Apply(buf.Data[recvIdx*blk:(recvIdx+1)*blk], st.Msg.Data, opt.Datatype)
		}
		c.Compute(blk, comm.ComputeReduce)
	}
	// Allgather phase: circulate the completed blocks.
	for step := 0; step < n-1; step++ {
		sendIdx := (me + 1 - step + n) % n
		recvIdx := (me - step + n) % n
		tg := opt.TagOf(comm.KindAllreduce, n-1+step)
		r := c.Irecv(left, tg)
		c.Send(right, tg, slice(sendIdx))
		st := c.Wait(r)
		if st.Msg.Data != nil && buf.Data != nil {
			copy(buf.Data[recvIdx*blk:(recvIdx+1)*blk], st.Msg.Data)
		}
	}
	return buf
}
