// Package noise generates deterministic per-rank system-noise schedules
// for the simulator, replicating the paper's injection methodology
// (§5.1.1, after Beckman et al. [2]): at a fixed frequency each rank is
// frozen for a random duration, e.g. uniform 0–10 ms at 10 Hz ≈ 5%
// average noise, 0–20 ms at 10 Hz ≈ 10%.
package noise

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Spec describes a noise injection law. The zero value means no noise.
type Spec struct {
	// Freq is the injection frequency in Hz (events per simulated second).
	Freq float64
	// MaxDelay is the upper bound of the uniform per-event freeze.
	MaxDelay time.Duration
	// Fraction is the share of ranks carrying the injector, selected
	// deterministically per rank; 0 or 1 means every rank is noisy.
	//
	// Calibration note: in a pure store-and-forward simulation, freezing
	// every rank of a 1000-process pipeline for tens of milliseconds makes
	// any collective orders of magnitude slower — effects real fabrics
	// absorb through asynchronous progress and buffering the simulator
	// does not model. Injecting on a subset reproduces the paper's §5.1.1
	// regime (noise originates at some processes and propagates — or not —
	// through the collective's dependency structure) at magnitudes
	// comparable to the published ones. See EXPERIMENTS.md.
	Fraction float64
	// Seed perturbs all per-rank streams (same workload, different noise).
	Seed int64
}

// None is the quiet system.
var None = Spec{}

// Uniform builds the paper's injection law: freezes drawn uniformly from
// [0, maxDelay) at freq Hz.
func Uniform(freq float64, maxDelay time.Duration) Spec {
	return Spec{Freq: freq, MaxDelay: maxDelay}
}

// Percent returns the paper's two standard settings: 5 → U(0,10ms)@10Hz,
// 10 → U(0,20ms)@10Hz. Other values scale MaxDelay proportionally
// (average noise fraction = Freq·MaxDelay/2).
func Percent(pct int) Spec {
	if pct == 0 {
		return None
	}
	return Uniform(10, time.Duration(pct)*2*time.Millisecond)
}

// Enabled reports whether the spec injects any noise.
func (s Spec) Enabled() bool { return s.Freq > 0 && s.MaxDelay > 0 }

// AvgFraction returns the expected fraction of time a rank is frozen.
func (s Spec) AvgFraction() float64 {
	if !s.Enabled() {
		return 0
	}
	return s.Freq * s.MaxDelay.Seconds() / 2
}

func (s Spec) String() string {
	if !s.Enabled() {
		return "no-noise"
	}
	return fmt.Sprintf("U(0,%v)@%gHz(avg %.0f%%)", s.MaxDelay, s.Freq, 100*s.AvgFraction())
}

// Source is one rank's deterministic noise stream. It is replayed lazily:
// the simulated runtime asks, each time the rank is about to act, how far
// the rank's accumulated freezes push its availability.
type Source struct {
	period time.Duration
	max    time.Duration
	rng    *rand.Rand
	nextAt time.Duration // start time of the next not-yet-applied event
}

// NewSource builds rank r's stream. Ranks get independent phases and
// delay sequences derived deterministically from (Seed, r).
func (s Spec) NewSource(r int) *Source {
	if !s.Enabled() {
		return nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "noise:%d:%d", s.Seed, r)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if s.Fraction > 0 && s.Fraction < 1 && rng.Float64() >= s.Fraction {
		return nil // this rank does not carry the injector
	}
	period := time.Duration(float64(time.Second) / s.Freq)
	return &Source{
		period: period,
		max:    s.MaxDelay,
		rng:    rng,
		// Random phase so ranks do not freeze in lockstep.
		nextAt: time.Duration(rng.Float64() * float64(period)),
	}
}

// AvailableAt folds every noise event starting at or before `now` into the
// rank's availability horizon `busyUntil` and returns the earliest time an
// action requested at `now` may begin. A freeze starting at e extends the
// horizon by its duration: busyUntil = max(busyUntil, e) + d — back-to-back
// freezes and freezes landing on an already-busy rank accumulate.
//
// A nil Source (quiet system) is valid and returns max(now, busyUntil).
func (src *Source) AvailableAt(now, busyUntil time.Duration) time.Duration {
	if src != nil {
		for src.nextAt <= now {
			start := src.nextAt
			d := time.Duration(src.rng.Float64() * float64(src.max))
			if busyUntil < start {
				busyUntil = start
			}
			busyUntil += d
			src.nextAt += src.period
		}
	}
	if busyUntil < now {
		return now
	}
	return busyUntil
}
