package noise

import (
	"testing"
	"time"
)

func TestNoneSource(t *testing.T) {
	var src *Source // nil = quiet
	if got := src.AvailableAt(5*time.Millisecond, 0); got != 5*time.Millisecond {
		t.Fatalf("quiet AvailableAt = %v, want now", got)
	}
	if got := src.AvailableAt(5*time.Millisecond, 9*time.Millisecond); got != 9*time.Millisecond {
		t.Fatalf("quiet AvailableAt with horizon = %v, want horizon", got)
	}
	if None.NewSource(3) != nil {
		t.Fatal("None must yield nil sources")
	}
}

func TestPercentSpecs(t *testing.T) {
	if f := Percent(5).AvgFraction(); f < 0.049 || f > 0.051 {
		t.Fatalf("Percent(5) fraction = %v", f)
	}
	if f := Percent(10).AvgFraction(); f < 0.099 || f > 0.101 {
		t.Fatalf("Percent(10) fraction = %v", f)
	}
	if Percent(10).MaxDelay != 20*time.Millisecond {
		t.Fatalf("Percent(10) max = %v, want 20ms", Percent(10).MaxDelay)
	}
	if Percent(0).Enabled() {
		t.Fatal("Percent(0) must be quiet")
	}
}

func TestSourceDeterministic(t *testing.T) {
	spec := Percent(5)
	a, b := spec.NewSource(7), spec.NewSource(7)
	for now := time.Duration(0); now < time.Second; now += 13 * time.Millisecond {
		if ga, gb := a.AvailableAt(now, 0), b.AvailableAt(now, 0); ga != gb {
			t.Fatalf("streams diverge at %v: %v vs %v", now, ga, gb)
		}
	}
}

func TestSourcesIndependentAcrossRanks(t *testing.T) {
	spec := Percent(5)
	a, b := spec.NewSource(0), spec.NewSource(1)
	same := true
	for now := time.Duration(0); now < time.Second; now += 13 * time.Millisecond {
		if a.AvailableAt(now, 0) != b.AvailableAt(now, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("ranks 0 and 1 have identical noise streams")
	}
}

func TestAvailableAtMonotonic(t *testing.T) {
	src := Percent(10).NewSource(3)
	var prev time.Duration
	for now := time.Duration(0); now < 2*time.Second; now += time.Millisecond {
		got := src.AvailableAt(now, prev)
		if got < now {
			t.Fatalf("AvailableAt(%v) = %v < now", now, got)
		}
		if got < prev {
			t.Fatalf("availability went backwards: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestLongRunFractionNearTarget(t *testing.T) {
	// Under permanent back-pressure every freeze accumulates, so over T
	// seconds the horizon must exceed T by the average noise fraction
	// (law of large numbers, ±20%).
	for _, pct := range []int{5, 10} {
		src := Percent(pct).NewSource(42)
		T := 100 * time.Second
		extra := src.AvailableAt(T, T) - T
		want := time.Duration(float64(pct) / 100 * float64(T))
		if extra < want*8/10 || extra > want*12/10 {
			t.Errorf("pct=%d: accumulated noise %v, want about %v", pct, extra, want)
		}
	}
}

func TestAccumulationUnderBackPressure(t *testing.T) {
	// If the rank is permanently busy, every freeze accumulates: after T
	// seconds the horizon must exceed T by roughly the average fraction.
	src := Percent(10).NewSource(5)
	T := 50 * time.Second
	horizon := src.AvailableAt(T, T) // rank busy until now, all noise stacks
	extra := horizon - T
	want := time.Duration(float64(T) * 0.10)
	if extra < want/2 || extra > want*2 {
		t.Fatalf("accumulated noise %v, want about %v", extra, want)
	}
}

func TestSpecStringsAndFraction(t *testing.T) {
	if None.String() != "no-noise" {
		t.Errorf("None = %q", None.String())
	}
	if s := Percent(5).String(); s == "" || s == "no-noise" {
		t.Errorf("Percent(5) = %q", s)
	}
	if None.AvgFraction() != 0 {
		t.Error("quiet system has nonzero fraction")
	}
	// Fraction selects a strict subset deterministically.
	spec := Percent(10)
	spec.Fraction = 0.3
	noisy := 0
	for r := 0; r < 1000; r++ {
		if spec.NewSource(r) != nil {
			noisy++
		}
	}
	if noisy < 200 || noisy > 400 {
		t.Fatalf("fraction 0.3 selected %d/1000 ranks", noisy)
	}
	// Same spec, same subset.
	again := 0
	for r := 0; r < 1000; r++ {
		if spec.NewSource(r) != nil {
			again++
		}
	}
	if again != noisy {
		t.Fatal("subset selection not deterministic")
	}
}
