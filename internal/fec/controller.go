package fec

import (
	"math"
	"sync"

	"adapt/internal/metrics"
)

// Config tunes the transports' FEC layer.
type Config struct {
	// K is the target group size: the framer closes a group after K data
	// segments (or earlier, on its idle-flush timer). Default 4.
	K int
	// M fixes the parity count per group. Zero selects the adaptive
	// controller: per-link observed loss chooses m within the budget.
	M int
	// MaxM caps adaptive parity per group. Default 4.
	MaxM int
	// Budget caps adaptive parity as a fraction of the group size
	// (bandwidth overhead bound). Default 0.5 — at most one parity shard
	// per two data shards.
	Budget float64
}

// Enabled reports whether the config asks for FEC at all.
func (c Config) Enabled() bool { return c.K > 0 }

// Normalized fills zero fields with defaults (K is left alone: a zero K
// means "FEC off").
func (c Config) Normalized() Config {
	if c.MaxM <= 0 {
		c.MaxM = 4
	}
	if c.Budget <= 0 {
		c.Budget = 0.5
	}
	if c.M > c.MaxM {
		c.MaxM = c.M
	}
	return c
}

// DefaultConfig is the standard tuning: groups of 4 data segments,
// adaptive parity up to 4 shards within a 50% bandwidth budget.
func DefaultConfig() Config {
	return Config{K: 4}.Normalized()
}

// Stats counts what a substrate's FEC layer did. Each substrate keeps
// its own instance (the process-global perf counters aggregate across
// worlds and are useless under parallel tests).
type Stats struct {
	// ParityEncoded counts parity shards encoded and sent.
	ParityEncoded uint64
	// Reconstructed counts data segments rebuilt from surviving parity —
	// losses that never cost a retransmit round trip.
	Reconstructed uint64
	// GroupsLost counts groups whose erasures outran their parity and
	// fell back to the ARQ/retransmit path.
	GroupsLost uint64
}

// Controller is the adaptive redundancy controller: it tracks an EWMA
// of per-link observed loss (fed by the transports' fault counters —
// drop verdicts, CRC failures, NACKed shards — and ack gaps) and picks
// the parity count for the next group on that link. Deterministic given
// the observation sequence; safe for concurrent use (the live runtime
// observes from many sender goroutines).
type Controller struct {
	cfg Config

	mu    sync.Mutex
	links map[uint64]float64 // directed link -> loss EWMA
}

// NewController builds a controller for the (normalized) config.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.Normalized(), links: make(map[uint64]float64)}
}

func linkKey(src, dst int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// ewmaAlpha weighs each group observation. High enough that a lossy
// phase lifts m within a few groups, low enough that one unlucky group
// does not slam the link to max parity.
const ewmaAlpha = 0.25

// Observe feeds one group outcome on the src→dst link: sent shards
// (data + parity) and how many were lost before FEC repair.
func (ct *Controller) Observe(src, dst int, sent, lost int) {
	if sent <= 0 {
		return
	}
	rate := float64(lost) / float64(sent)
	k := linkKey(src, dst)
	ct.mu.Lock()
	old, seen := ct.links[k]
	if !seen {
		ct.links[k] = rate
	} else {
		ct.links[k] = old + ewmaAlpha*(rate-old)
	}
	ct.mu.Unlock()
}

// Loss returns the link's current loss estimate (0 when unobserved).
func (ct *Controller) Loss(src, dst int) float64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.links[linkKey(src, dst)]
}

// ChooseM picks the parity count for a k-shard group on src→dst: the
// fixed M when configured, otherwise enough parity to cover twice the
// observed per-group expected loss (headroom against burstiness),
// clamped to [1, min(MaxM, budget·k)] — at least one parity shard, and
// never past the bandwidth budget.
func (ct *Controller) ChooseM(src, dst, k int) int {
	if ct.cfg.M > 0 {
		if metrics.Enabled() {
			metrics.RecordLink(src, dst, ct.Loss(src, dst), ct.cfg.M)
		}
		return ct.cfg.M
	}
	loss := ct.Loss(src, dst)
	m := int(math.Ceil(2 * loss * float64(k)))
	if m < 1 {
		m = 1
	}
	cap := ct.cfg.MaxM
	if b := int(math.Round(ct.cfg.Budget * float64(k))); b < cap {
		cap = b
	}
	if cap < 1 {
		cap = 1
	}
	if m > cap {
		m = cap
	}
	// Publish the choice to the live telemetry plane: /statusz renders
	// the per-link loss EWMA and chosen parity while the run is hot.
	metrics.RecordLink(src, dst, loss, m)
	return m
}

// LinkEstimates snapshots every observed link's loss EWMA, keyed by
// directed (src, dst) — the controller-local view of the health table
// the telemetry plane aggregates.
func (ct *Controller) LinkEstimates() map[[2]int]float64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make(map[[2]int]float64, len(ct.links))
	for k, loss := range ct.links {
		out[[2]int{int(int32(k >> 32)), int(int32(k))}] = loss
	}
	return out
}
