package fec

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzFEC round-trips random (k, m, loss-pattern) geometries through
// encode → erase → reconstruct. Invariants:
//
//   - any loss pattern with missing-data <= surviving-parity decodes
//     bit-exactly (including short and empty shards);
//   - any pattern past that bound fails with *ErrShortParity and leaves
//     the missing shards nil (no partial garbage);
//   - present shards are never modified by Reconstruct.
func FuzzFEC(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0b0101), uint16(0), int64(1), uint16(64))
	f.Add(uint8(1), uint8(1), uint16(1), uint16(0), int64(2), uint16(1))
	f.Add(uint8(8), uint8(4), uint16(0b11110000), uint16(0b0011), int64(3), uint16(257))
	f.Add(uint8(4), uint8(1), uint16(0b0001), uint16(0b1), int64(4), uint16(300))
	f.Add(uint8(6), uint8(3), uint16(0b111), uint16(0), int64(5), uint16(0))
	f.Add(uint8(3), uint8(3), uint16(0b111), uint16(0b101), int64(6), uint16(9))
	f.Fuzz(func(t *testing.T, kRaw, mRaw uint8, lossData, lossParity uint16, seed int64, sizeRaw uint16) {
		k := int(kRaw)%12 + 1
		m := int(mRaw)%6 + 1
		size := int(sizeRaw) % 1024
		p := Params{K: k, M: m}
		rng := rand.New(rand.NewSource(seed))

		data := make([][]byte, k)
		sizes := make([]int, k)
		orig := make([][]byte, k)
		for i := range data {
			n := size
			switch rng.Intn(4) {
			case 0:
				n = 0
			case 1:
				if size > 0 {
					n = rng.Intn(size)
				}
			}
			b := make([]byte, n)
			rng.Read(b)
			data[i] = b
			orig[i] = append([]byte(nil), b...)
			sizes[i] = n
		}
		parity := EncodeParity(p, data)

		got := make([][]byte, k)
		copy(got, data)
		missing := 0
		for i := 0; i < k; i++ {
			if lossData&(1<<i) != 0 {
				got[i] = nil
				missing++
			}
		}
		pgot := make([][]byte, m)
		copy(pgot, parity)
		have := 0
		for j := 0; j < m; j++ {
			if lossParity&(1<<j) != 0 {
				pgot[j] = nil
			} else {
				have++
			}
		}

		err := Reconstruct(p, got, pgot, sizes)
		if Recoverable(missing, have) {
			if err != nil {
				t.Fatalf("k=%d m=%d missing=%d have=%d: want success, got %v", k, m, missing, have, err)
			}
			for i := range got {
				if !bytes.Equal(got[i], orig[i]) {
					t.Fatalf("k=%d m=%d: shard %d mismatch after reconstruct", k, m, i)
				}
				if got[i] == nil {
					t.Fatalf("k=%d m=%d: shard %d still nil after successful reconstruct", k, m, i)
				}
			}
		} else {
			sp, ok := err.(*ErrShortParity)
			if !ok {
				t.Fatalf("k=%d m=%d missing=%d have=%d: want *ErrShortParity, got %v", k, m, missing, have, err)
			}
			if sp.Missing != missing || sp.Have != have {
				t.Fatalf("ErrShortParity{%d,%d}, want {%d,%d}", sp.Missing, sp.Have, missing, have)
			}
			for i := 0; i < k; i++ {
				if lossData&(1<<i) != 0 && got[i] != nil {
					t.Fatalf("failed reconstruct filled shard %d", i)
				}
			}
		}
		// Present shards must be untouched either way.
		for i := 0; i < k; i++ {
			if lossData&(1<<i) == 0 && !bytes.Equal(data[i], orig[i]) {
				t.Fatalf("Reconstruct modified present shard %d", i)
			}
		}
	})
}
