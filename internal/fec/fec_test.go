package fec

import (
	"bytes"
	"math/rand"
	"testing"

	"adapt/internal/comm"
)

// mkShards builds k deterministic shards; the last one is short to
// exercise the zero-padding path, and one mid shard is empty when k
// allows, standing in for a zero-length pipeline segment.
func mkShards(rng *rand.Rand, k, size int) ([][]byte, []int) {
	data := make([][]byte, k)
	sizes := make([]int, k)
	for i := range data {
		n := size
		if i == k-1 && size > 1 {
			n = size / 2 // short trailing segment
		}
		if k > 3 && i == 1 {
			n = 0
		}
		b := make([]byte, n)
		rng.Read(b)
		data[i] = b
		sizes[i] = n
	}
	return data, sizes
}

// erase returns a copy of data with the given shard indices erased.
func erase(data [][]byte, lost []int) [][]byte {
	out := make([][]byte, len(data))
	copy(out, data)
	for _, i := range lost {
		out[i] = nil
	}
	return out
}

// eraseParity nils the given parity indices (copy).
func eraseParity(parity [][]byte, lost []int) [][]byte {
	out := make([][]byte, len(parity))
	copy(out, parity)
	for _, i := range lost {
		out[i] = nil
	}
	return out
}

func checkRoundTrip(t *testing.T, p Params, data [][]byte, sizes []int, lostData, lostParity []int) {
	t.Helper()
	parity := EncodeParity(p, data)
	got := erase(data, lostData)
	pgot := eraseParity(parity, lostParity)
	err := Reconstruct(p, got, pgot, sizes)
	if err != nil {
		t.Fatalf("k=%d m=%d lost=%v lostParity=%v: reconstruct failed: %v", p.K, p.M, lostData, lostParity, err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("k=%d m=%d: shard %d mismatch after reconstruct (len %d vs %d)",
				p.K, p.M, i, len(got[i]), len(data[i]))
		}
	}
}

// combinations invokes fn with every size-r subset of [0,n).
func combinations(n, r int, fn func([]int)) {
	idx := make([]int, r)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == r {
			fn(append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// TestErasureBoundary is the boundary table: for each geometry, EVERY
// loss pattern of exactly m data shards reconstructs bit-exactly, and
// every pattern of m+1 losses fails with the structured *ErrShortParity
// that sends the transports to the retransmit backstop.
func TestErasureBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range []Params{
		{K: 1, M: 1}, {K: 2, M: 1}, {K: 4, M: 1},
		{K: 4, M: 2}, {K: 4, M: 3}, {K: 4, M: 4},
		{K: 6, M: 2}, {K: 8, M: 3}, {K: 3, M: 3},
	} {
		data, sizes := mkShards(rng, g.K, 257) // off-class size exercises padding
		parity := EncodeParity(g, data)

		// loss == m: every data-loss pattern reconstructs.
		combinations(g.K, min(g.M, g.K), func(lost []int) {
			checkRoundTrip(t, g, data, sizes, lost, nil)
		})

		// loss == m but split across data and parity: still fine as long
		// as missing data <= surviving parity.
		if g.M >= 2 && g.K >= 2 {
			checkRoundTrip(t, g, data, sizes, []int{0}, []int{g.M - 1})
		}

		// loss == m+1 data shards (when the group has that many): fails
		// with ErrShortParity, never silently corrupts.
		if g.K >= g.M+1 {
			combinations(g.K, g.M+1, func(lost []int) {
				got := erase(data, lost)
				err := Reconstruct(g, got, eraseParity(parity, nil), sizes)
				sp, ok := err.(*ErrShortParity)
				if !ok {
					t.Fatalf("k=%d m=%d lost=%v: want *ErrShortParity, got %v", g.K, g.M, lost, err)
				}
				if sp.Missing != g.M+1 || sp.Have != g.M {
					t.Fatalf("k=%d m=%d: ErrShortParity{%d,%d}, want {%d,%d}",
						g.K, g.M, sp.Missing, sp.Have, g.M+1, g.M)
				}
				for _, i := range lost {
					if got[i] != nil {
						t.Fatalf("k=%d m=%d: failed reconstruct partially filled shard %d", g.K, g.M, i)
					}
				}
			})
		}

		// m data losses plus one parity loss: one shard short, structured
		// failure.
		if g.K >= g.M {
			lost := make([]int, g.M)
			for i := range lost {
				lost[i] = i
			}
			got := erase(data, lost)
			err := Reconstruct(g, got, eraseParity(parity, []int{0}), sizes)
			if _, ok := err.(*ErrShortParity); !ok {
				t.Fatalf("k=%d m=%d: m data + 1 parity lost: want *ErrShortParity, got %v", g.K, g.M, err)
			}
		}
	}
}

// TestRecoverable pins the recoverability predicate the transports use
// to decide FEC-vs-fallback.
func TestRecoverable(t *testing.T) {
	for _, tc := range []struct {
		missing, have int
		want          bool
	}{
		{0, 0, true}, {1, 1, true}, {2, 1, false}, {3, 3, true}, {4, 3, false},
	} {
		if got := Recoverable(tc.missing, tc.have); got != tc.want {
			t.Fatalf("Recoverable(%d,%d) = %v, want %v", tc.missing, tc.have, got, tc.want)
		}
	}
}

// TestXORParityIsXOR pins the m=1 code to plain XOR: no field
// multiplies, byte i of parity is the XOR of byte i across shards.
func TestXORParityIsXOR(t *testing.T) {
	data := [][]byte{{0x01, 0x02}, {0x10, 0x20}, {0xff, 0x00}}
	parity := EncodeParity(Params{K: 3, M: 1}, data)
	want := []byte{0x01 ^ 0x10 ^ 0xff, 0x02 ^ 0x20 ^ 0x00}
	if !bytes.Equal(parity[0], want) {
		t.Fatalf("xor parity = %x, want %x", parity[0], want)
	}
}

// TestGF256Tables sanity-checks the field: a*inv(a) == 1 and the exp
// table cycles with period 255.
func TestGF256Tables(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		if seen[gfExp[i]] {
			t.Fatalf("exp table repeats within one period at %d", i)
		}
		seen[gfExp[i]] = true
	}
}

// TestZeroLengthGroup: a group whose every member is empty (barrier
// traffic) encodes to empty parity and "reconstructs" losses as empty
// non-nil shards.
func TestZeroLengthGroup(t *testing.T) {
	p := Params{K: 3, M: 2}
	data := [][]byte{{}, {}, {}}
	parity := EncodeParity(p, data)
	got := [][]byte{nil, {}, nil}
	if err := Reconstruct(p, got, parity, []int{0, 0, 0}); err != nil {
		t.Fatalf("zero-length reconstruct: %v", err)
	}
	if got[0] == nil || len(got[0]) != 0 || got[2] == nil || len(got[2]) != 0 {
		t.Fatalf("zero-length shards not reconstructed as empty non-nil: %#v", got)
	}
}

// TestSplit pins the il2p small/large block-count arithmetic.
func TestSplit(t *testing.T) {
	for _, tc := range []struct {
		total, k int
		want     []int
	}{
		{0, 4, nil},
		{1, 4, []int{1}},
		{4, 4, []int{4}},
		{5, 4, []int{3, 2}},
		{9, 4, []int{3, 3, 3}},
		{10, 4, []int{4, 3, 3}},
		{11, 4, []int{4, 4, 3}},
		{12, 4, []int{4, 4, 4}},
		{13, 4, []int{4, 3, 3, 3}},
		{1023, 200, []int{171, 171, 171, 170, 170, 170}},
	} {
		got := Split(tc.total, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("Split(%d,%d) = %v, want %v", tc.total, tc.k, got, tc.want)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Fatalf("Split(%d,%d) = %v, want %v", tc.total, tc.k, got, tc.want)
			}
		}
		if tc.total > 0 && sum != tc.total {
			t.Fatalf("Split(%d,%d) sums to %d", tc.total, tc.k, sum)
		}
	}
}

// TestControllerAdaptsM: the controller raises m as observed loss
// climbs and respects the budget clamp.
func TestControllerAdaptsM(t *testing.T) {
	ct := NewController(Config{K: 8, MaxM: 4, Budget: 0.5})
	if m := ct.ChooseM(0, 1, 8); m != 1 {
		t.Fatalf("unobserved link m = %d, want 1", m)
	}
	// Feed a lossy phase: 3 of 10 shards lost per group.
	for i := 0; i < 12; i++ {
		ct.Observe(0, 1, 10, 3)
	}
	m := ct.ChooseM(0, 1, 8)
	if m <= 1 {
		t.Fatalf("lossy link m = %d, want > 1", m)
	}
	if m > 4 {
		t.Fatalf("m = %d exceeds MaxM/budget clamp", m)
	}
	// Total loss saturates at the budget, never past it.
	for i := 0; i < 20; i++ {
		ct.Observe(0, 1, 10, 10)
	}
	if m := ct.ChooseM(0, 1, 8); m != 4 {
		t.Fatalf("saturated link m = %d, want clamp 4", m)
	}
	// A quiet link is unaffected.
	if m := ct.ChooseM(2, 3, 8); m != 1 {
		t.Fatalf("quiet link m = %d, want 1", m)
	}
	// Fixed-M config ignores observations.
	fx := NewController(Config{K: 4, M: 2})
	fx.Observe(0, 1, 10, 10)
	if m := fx.ChooseM(0, 1, 4); m != 2 {
		t.Fatalf("fixed m = %d, want 2", m)
	}
}

// TestRecoveryDecay: the EWMA forgets a lossy burst once the link goes
// clean, stepping m back down.
func TestRecoveryDecay(t *testing.T) {
	ct := NewController(Config{K: 8, MaxM: 4, Budget: 0.5})
	for i := 0; i < 10; i++ {
		ct.Observe(0, 1, 10, 4)
	}
	high := ct.ChooseM(0, 1, 8)
	for i := 0; i < 40; i++ {
		ct.Observe(0, 1, 10, 0)
	}
	low := ct.ChooseM(0, 1, 8)
	if low >= high {
		t.Fatalf("m did not decay after clean phase: %d -> %d", high, low)
	}
	if low != 1 {
		t.Fatalf("clean link settled at m=%d, want 1", low)
	}
}

// TestParityBuffersPooled: parity buffers come from the segment pool
// and can be returned without poisoning size classes.
func TestParityBuffersPooled(t *testing.T) {
	p := Params{K: 2, M: 2}
	data := [][]byte{make([]byte, 300), make([]byte, 300)}
	parity := EncodeParity(p, data)
	for _, q := range parity {
		if cap(q) < 300 {
			t.Fatalf("parity cap %d below shard length", cap(q))
		}
		comm.PutBuf(q)
	}
	// Reuse must hand back sane buffers, not aliased stale parity.
	b := comm.GetBufZero(300)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("pooled buffer dirty at %d: %d", i, v)
		}
	}
	comm.PutBuf(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
