// Package fec is the erasure-coding layer for the segment stream: k data
// segments are grouped with m parity segments so a receiver can
// reconstruct up to m lost segments locally, without waiting out the
// RTO + retransmit round trip. m=1 is plain XOR parity; m>1 uses a
// Reed–Solomon-style code over GF(256) built from a Cauchy matrix, so
// ANY m erasures in a group are recoverable (every square submatrix of a
// Cauchy matrix is invertible).
//
// The codec is deliberately transport-agnostic: it knows nothing about
// tags, xids, or wire frames. Each transport owns a sender-side group
// framer (accumulate k segments, emit parity) and a receiver-side
// reconstructor (track arrivals, decode the gaps); both feed segments
// through the shared progress engine so a reconstructed segment
// completes the matching receive exactly as if it had arrived on the
// wire. FEC composes with — never replaces — the faults.Recovery ARQ
// machinery: when a group loses more than m shards the retransmit path
// is still the backstop.
//
// Shards in one group may have different lengths (a trailing pipeline
// segment is short). Parity shards are as long as the longest member;
// shorter members are treated as zero-padded, and reconstruction
// re-slices each recovered shard to its true length (carried in the
// group metadata), so the padding never reaches a receiver.
package fec

import (
	"fmt"

	"adapt/internal/comm"
)

// GF(256) log/exp tables over the AES-adjacent primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11d), the same field every RS-style erasure
// coder uses. The exp table is doubled so gfMul needs no mod 255.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("fec: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// Params fixes one group's geometry: K data shards, M parity shards.
type Params struct {
	K, M int
}

// Validate rejects geometries the GF(256) Cauchy construction cannot
// express: K and M must be positive and K+M must leave the parity row
// points and data column points distinct field elements.
func (p Params) Validate() error {
	if p.K < 1 || p.M < 1 {
		return fmt.Errorf("fec: params k=%d m=%d: both must be >= 1", p.K, p.M)
	}
	if p.K+p.M > 256 {
		return fmt.Errorf("fec: params k=%d m=%d: k+m exceeds GF(256) points", p.K, p.M)
	}
	return nil
}

// Coeff is the encoding coefficient of data shard i in parity shard j.
// For M=1 every coefficient is 1 — parity is the XOR of the group, and
// encode/decode never multiplies. For M>1 the matrix is Cauchy,
// c[j][i] = 1/(x_j ⊕ y_i) with x_j = j and y_i = M+i: the two point
// sets are disjoint, so every square submatrix is invertible and any M
// erasures are recoverable.
func (p Params) Coeff(j, i int) byte {
	if p.M == 1 {
		return 1
	}
	return gfInv(byte(j) ^ byte(p.M+i))
}

// shardLen is the parity length for a group: the longest member.
func shardLen(data [][]byte) int {
	n := 0
	for _, d := range data {
		if len(d) > n {
			n = len(d)
		}
	}
	return n
}

// mulAccum adds c·src into dst (dst ^= c*src bytewise). dst must be at
// least as long as src; the tail beyond src is the implicit zero pad.
func mulAccum(dst, src []byte, c byte) {
	switch c {
	case 0:
	case 1:
		for i, v := range src {
			dst[i] ^= v
		}
	default:
		lc := int(gfLog[c])
		for i, v := range src {
			if v != 0 {
				dst[i] ^= gfExp[lc+int(gfLog[v])]
			}
		}
	}
}

// EncodeParity computes the M parity shards for a group of K = len(data)
// data shards (lengths may differ; short shards count as zero-padded).
// Parity buffers come from the segment pool and are owned by the
// caller; a group whose members are all empty yields empty (non-nil)
// parity shards.
func EncodeParity(p Params, data [][]byte) [][]byte {
	if len(data) != p.K {
		panic(fmt.Sprintf("fec: encode with %d shards, params k=%d", len(data), p.K))
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := shardLen(data)
	parity := make([][]byte, p.M)
	for j := range parity {
		par := comm.GetBufZero(n)
		if par == nil {
			// All-empty group (zero-length segments): parity is present
			// but empty — nil means "lost" to the reconstructor.
			par = []byte{}
		}
		for i, d := range data {
			mulAccum(par, d, p.Coeff(j, i))
		}
		parity[j] = par
	}
	return parity
}

// ErrShortParity reports a group with more erasures than surviving
// parity shards — reconstruction is impossible and the caller must fall
// back to the ARQ/retransmit path.
type ErrShortParity struct {
	Missing, Have int
}

func (e *ErrShortParity) Error() string {
	return fmt.Sprintf("fec: %d data shards missing but only %d parity shards survive", e.Missing, e.Have)
}

// Recoverable reports whether a group with the given erasure pattern can
// be reconstructed: the number of missing data shards must not exceed
// the number of surviving parity shards.
func Recoverable(missingData, haveParity int) bool {
	return missingData <= haveParity
}

// Reconstruct fills in the missing data shards in place: data[i] == nil
// marks an erasure, sizes[i] is shard i's true length. parity[j] == nil
// marks a lost parity shard. Recovered shards are pooled buffers
// (re-sliced to their true length) owned by the caller; zero-length
// shards come back as empty non-nil slices. Present shards are read,
// never modified. Returns *ErrShortParity when the erasures outnumber
// the surviving parity.
func Reconstruct(p Params, data [][]byte, parity [][]byte, sizes []int) error {
	if len(data) != p.K || len(parity) != p.M || len(sizes) != p.K {
		panic(fmt.Sprintf("fec: reconstruct shape (%d data, %d parity, %d sizes) vs params k=%d m=%d",
			len(data), len(parity), len(sizes), p.K, p.M))
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	var missing []int
	for i, d := range data {
		if d == nil {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var rows []int
	for j, q := range parity {
		if q != nil {
			rows = append(rows, j)
		}
	}
	if len(missing) > len(rows) {
		return &ErrShortParity{Missing: len(missing), Have: len(rows)}
	}
	rows = rows[:len(missing)]
	t := len(missing)

	// Shard length: the longest surviving shard. Parity shards are always
	// full-length, and at least one survives (t >= 1 and rows is non-empty).
	n := 0
	for _, j := range rows {
		if len(parity[j]) > n {
			n = len(parity[j])
		}
	}

	// Syndromes: r_j = parity_j ⊕ Σ_{present i} c[j][i]·data_i. What is
	// left is exactly the missing shards' contribution to each row.
	synd := make([][]byte, t)
	for r, j := range rows {
		s := comm.GetBufZero(n)
		mulAccum(s, parity[j], 1)
		for i, d := range data {
			if d != nil {
				mulAccum(s, d, p.Coeff(j, i))
			}
		}
		synd[r] = s
	}

	// Solve A·x = synd for the missing shards, where A[r][l] =
	// c[rows[r]][missing[l]] — a t×t submatrix of the Cauchy (or all-ones)
	// matrix, invertible by construction. Gauss–Jordan over GF(256),
	// applying every row operation to the syndrome byte streams.
	A := make([][]byte, t)
	for r, j := range rows {
		A[r] = make([]byte, t)
		for l, i := range missing {
			A[r][l] = p.Coeff(j, i)
		}
	}
	for col := 0; col < t; col++ {
		pivot := -1
		for r := col; r < t; r++ {
			if A[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			// Unreachable for Cauchy/XOR submatrices; guard anyway.
			for _, s := range synd {
				comm.PutBuf(s)
			}
			return fmt.Errorf("fec: singular reconstruction matrix (k=%d m=%d)", p.K, p.M)
		}
		A[col], A[pivot] = A[pivot], A[col]
		synd[col], synd[pivot] = synd[pivot], synd[col]
		inv := gfInv(A[col][col])
		for l := col; l < t; l++ {
			A[col][l] = gfMul(A[col][l], inv)
		}
		scaleRow(synd[col], inv)
		for r := 0; r < t; r++ {
			if r == col || A[r][col] == 0 {
				continue
			}
			f := A[r][col]
			for l := col; l < t; l++ {
				A[r][l] ^= gfMul(f, A[col][l])
			}
			mulAccum(synd[r], synd[col], f)
		}
	}

	// synd[l] now holds missing shard l, zero-padded to n; hand each back
	// at its true length. Zero-size shards become empty non-nil slices so
	// callers can distinguish "recovered empty" from "still missing".
	for l, i := range missing {
		if sizes[i] < 0 || sizes[i] > n {
			for r := l; r < t; r++ {
				comm.PutBuf(synd[r])
			}
			return fmt.Errorf("fec: shard %d size %d outside [0,%d]", i, sizes[i], n)
		}
		if sizes[i] == 0 {
			comm.PutBuf(synd[l])
			data[i] = []byte{}
			continue
		}
		data[i] = synd[l][:sizes[i]]
	}
	return nil
}

// scaleRow multiplies a byte stream by c in place.
func scaleRow(s []byte, c byte) {
	if c == 1 {
		return
	}
	lc := int(gfLog[c])
	for i, v := range s {
		if v != 0 {
			s[i] = gfExp[lc+int(gfLog[v])]
		}
	}
}

// Split divides a stream of total segments into FEC groups, sized per
// the il2p small/large block-count split: the group count is
// ceil(total/targetK), and groups are as equal as possible — large
// groups (small+1 segments) first, then small groups — so a trailing
// group is never pathologically tiny. Used wherever the segment count
// is known up front (benchmark stream protection, tests); the online
// framers approximate it with a fill-or-flush policy.
func Split(total, targetK int) []int {
	if total <= 0 {
		return nil
	}
	if targetK < 1 {
		targetK = 1
	}
	blockCount := (total + targetK - 1) / targetK
	small := total / blockCount
	largeCount := total - blockCount*small
	smallCount := blockCount - largeCount
	sizes := make([]int, 0, blockCount)
	for i := 0; i < largeCount; i++ {
		sizes = append(sizes, small+1)
	}
	for i := 0; i < smallCount; i++ {
		sizes = append(sizes, small)
	}
	return sizes
}
