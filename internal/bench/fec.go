package bench

import (
	"fmt"
	"sort"
	"time"

	"adapt/internal/comm"
	"adapt/internal/faults"
	"adapt/internal/fec"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

// The FEC loss-sweep exhibit: a segment stream over one lossy link,
// priced two ways at every rung of a loss ladder — ARQ alone (every loss
// costs a retransmit round trip at the RTO) versus ARQ plus erasure
// coding (losses within the group's parity are reconstructed at the
// receiver and cost no round trip). The sweep reports p50/p99 makespan
// over a seed population, so the tail — where the RTO round trips live —
// is visible next to the median. scripts/bench.sh serializes the result
// into BENCH_fec.json through FECReport, whose gate re-asserts the
// tentpole invariant inside the benchmark itself: across every FEC run
// of the sweep, a run with no lost group must show zero retransmits, and
// at least one run must have repaired real losses that way.

// FECRow is one (loss, mode) point of the sweep, aggregated over seeds.
type FECRow struct {
	Loss          float64 `json:"loss"`
	Mode          string  `json:"mode"` // "arq" or "fec"
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	Drops         uint64  `json:"drops"`
	Retries       uint64  `json:"retries"`
	Reconstructed uint64  `json:"reconstructed"`
	GroupsLost    uint64  `json:"groups_lost"`
}

// FECGate is the pass/fail summary scripts/bench.sh gates on.
type FECGate struct {
	// ZeroRetransmitWithinParity: every FEC run whose groups all repaired
	// retransmitted nothing.
	ZeroRetransmitWithinParity bool `json:"zero_retransmit_within_parity"`
	// RepairExercised: at least one FEC run saw losses, reconstructed
	// them, and retransmitted nothing — the claim is not vacuous.
	RepairExercised bool `json:"repair_exercised"`
}

// FECReport is the BENCH_fec.json payload.
type FECReport struct {
	Exhibit  string   `json:"exhibit"`
	Segments int      `json:"segments"`
	SegBytes int      `json:"seg_bytes"`
	Seeds    int      `json:"seeds"`
	K        int      `json:"k"`
	M        int      `json:"m"`
	Gate     FECGate  `json:"gate"`
	Rows     []FECRow `json:"rows"`
}

// fecCell is one simulated stream run.
type fecCell struct {
	Makespan time.Duration
	Stats    faults.Stats
	FEC      fec.Stats
	Lost     int // sends that exhausted the attempt budget
}

const (
	fecSweepSegments = 64
	fecSweepSegBytes = 512
	fecSweepK        = 4
	fecSweepM        = 2
)

// fecSweepLosses is the loss ladder (forward link-scoped, so acks ride
// clean and every retransmit is attributable to data loss).
var fecSweepLosses = []float64{0, 0.02, 0.05, 0.1}

// fecStreamRun streams fecSweepSegments eager segments 0→1 under the
// given forward loss rate, with or without the FEC layer.
func fecStreamRun(seed int, loss float64, withFEC bool) fecCell {
	k := sim.New()
	w := simmpi.NewWorld(k, netmodel.Cori(2), noise.None)
	plan := faults.MustParsePlan(fmt.Sprintf("seed=%d; link 0->1: drop=%g", seed, loss))
	w.InstallFaults(plan, faults.DefaultRecovery())
	if withFEC {
		w.EnableFEC(fec.Config{K: fecSweepK, M: fecSweepM})
	}
	w.Spawn(func(c *simmpi.Comm) {
		switch c.Rank() {
		case 0:
			// Isend the whole stream before waiting, so groups fill to K
			// instead of trickling one segment per ack round trip.
			rs := make([]comm.Request, fecSweepSegments)
			for i := range rs {
				rs[i] = c.Isend(1, comm.MakeTag(comm.KindP2P, 0, i), comm.Sized(fecSweepSegBytes))
			}
			c.WaitAll(rs)
		case 1:
			for i := 0; i < fecSweepSegments; i++ {
				c.Recv(0, comm.MakeTag(comm.KindP2P, 0, i))
			}
		}
	})
	return fecCell{Makespan: k.MustRun(), Stats: w.FaultStats(), FEC: w.FECStats(), Lost: len(w.Failures())}
}

// fecSeeds is the seed population per (loss, mode) point.
func (s Scale) fecSeeds() int {
	if s.NoiseReps >= 12 { // full scale
		return 25
	}
	return 9
}

// durPercentile returns the p-quantile of a sorted duration slice.
func durPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// FECSweep runs the full ladder × {arq, fec} × seeds grid and aggregates
// it into the report. Deterministic: virtual time, seeded plans.
func (s Scale) FECSweep() FECReport {
	seeds := s.fecSeeds()
	rep := FECReport{
		Exhibit:  "fec-loss-sweep",
		Segments: fecSweepSegments,
		SegBytes: fecSweepSegBytes,
		Seeds:    seeds,
		K:        fecSweepK,
		M:        fecSweepM,
		Gate:     FECGate{ZeroRetransmitWithinParity: true},
	}
	for _, loss := range fecSweepLosses {
		for _, mode := range []string{"arq", "fec"} {
			loss, withFEC := loss, mode == "fec"
			spans := make([]time.Duration, 0, seeds)
			row := FECRow{Loss: loss, Mode: mode}
			for seed := 1; seed <= seeds; seed++ {
				seed := seed
				cell := s.cell(func() any { return fecStreamRun(seed, loss, withFEC) }, fecCell{}).(fecCell)
				spans = append(spans, cell.Makespan)
				row.Drops += cell.Stats.Drops
				row.Retries += cell.Stats.Retries
				row.Reconstructed += cell.FEC.Reconstructed
				row.GroupsLost += cell.FEC.GroupsLost
				if withFEC {
					if cell.FEC.GroupsLost == 0 && cell.Stats.Retries != 0 {
						rep.Gate.ZeroRetransmitWithinParity = false
					}
					if cell.Stats.Drops > 0 && cell.FEC.Reconstructed > 0 && cell.Stats.Retries == 0 {
						rep.Gate.RepairExercised = true
					}
				}
			}
			sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
			row.P50Ns = durPercentile(spans, 0.50).Nanoseconds()
			row.P99Ns = durPercentile(spans, 0.99).Nanoseconds()
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// GateErr returns nil when the report's gates hold, or a descriptive
// error for scripts/bench.sh to fail on.
func (r FECReport) GateErr() error {
	if !r.Gate.ZeroRetransmitWithinParity {
		return fmt.Errorf("bench: FEC run retransmitted with every group repaired (zero-retransmit gate)")
	}
	if !r.Gate.RepairExercised {
		return fmt.Errorf("bench: no FEC run exercised the zero-retransmit repair path (vacuous sweep)")
	}
	return nil
}

// ExtFEC renders the sweep as the ext-fec exhibit table.
func (s Scale) ExtFEC() []*Table {
	rep := s.FECSweep()
	t := &Table{
		ID: "ext-fec",
		Title: fmt.Sprintf("Segment stream under loss, ARQ vs FEC(k=%d,m=%d), %d×%dB segments, %d seeds (cori)",
			rep.K, rep.M, rep.Segments, rep.SegBytes, rep.Seeds),
		Header: []string{"loss", "arq p50 ms", "arq p99 ms", "fec p50 ms", "fec p99 ms",
			"retries arq/fec", "reconstructed", "groups lost"},
		Notes: []string{
			"extension beyond the paper: erasure-coded segment streams; loss within parity repairs with zero retransmits",
		},
	}
	for i := 0; i+1 < len(rep.Rows); i += 2 {
		arq, fecRow := rep.Rows[i], rep.Rows[i+1]
		t.AddRow(fmt.Sprintf("%.0f%%", 100*arq.Loss),
			ms(time.Duration(arq.P50Ns)), ms(time.Duration(arq.P99Ns)),
			ms(time.Duration(fecRow.P50Ns)), ms(time.Duration(fecRow.P99Ns)),
			fmt.Sprintf("%d/%d", arq.Retries, fecRow.Retries),
			fmt.Sprint(fecRow.Reconstructed), fmt.Sprint(fecRow.GroupsLost))
	}
	return []*Table{t}
}
