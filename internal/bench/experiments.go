package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"adapt/internal/asp"
	"adapt/internal/faults"
	"adapt/internal/imb"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
)

// Scale sets the machine sizes and repetition counts. Full is the paper's
// configuration; Quick shrinks everything for tests and Go benchmarks.
type Scale struct {
	CoriNodes      int
	Stampede2Nodes int
	PSGNodes       int
	NoiseReps      int // repetitions inside the noise experiment's train
	Reps           int // 0 → imb.DefaultReps per size
	Sizes          []int
	GPUSizes       []int
	ASPIters       int
	ASPDim         int

	// FaultPlan, when non-nil, adds a custom row to the ext-chaos exhibit
	// (adaptbench -faults "seed=42; all: drop=0.1"); a plan with crash
	// rules (adaptbench -faults "crash@3") lands in ext-crash instead.
	FaultPlan *faults.Plan

	// CTrace, when non-nil, captures one causal event trace per
	// experiment cell (adaptbench -ctrace; see internal/trace/analyze).
	CTrace *TraceSink

	// sweep, when non-nil, routes independent experiment cells through
	// the parallel record/execute/replay scheduler (see parallel.go).
	sweep *sweeper
}

// Full reproduces the paper's published configuration: 1024 ranks on
// Cori, 1536 on Stampede2, 32 GPUs on PSG.
func Full() Scale {
	return Scale{
		CoriNodes: 32, Stampede2Nodes: 32, PSGNodes: 8,
		NoiseReps: 12,
		Sizes: []int{64 * netmodel.KB, 128 * netmodel.KB, 256 * netmodel.KB,
			512 * netmodel.KB, 1 * netmodel.MB, 2 * netmodel.MB, 4 * netmodel.MB},
		GPUSizes: []int{1 * netmodel.MB, 2 * netmodel.MB, 4 * netmodel.MB,
			8 * netmodel.MB, 16 * netmodel.MB, 32 * netmodel.MB},
		ASPIters: 128, ASPDim: 16384,
	}
}

// Quick is a reduced configuration for fast regression runs.
func Quick() Scale {
	return Scale{
		CoriNodes: 4, Stampede2Nodes: 4, PSGNodes: 2,
		NoiseReps: 4, Reps: 2,
		Sizes:    []int{256 * netmodel.KB, 1 * netmodel.MB, 4 * netmodel.MB},
		GPUSizes: []int{4 * netmodel.MB, 32 * netmodel.MB},
		ASPIters: 16, ASPDim: 2048,
	}
}

// NoiseFraction is the share of ranks carrying the §5.1.1 injector. See
// the calibration note on noise.Spec.Fraction.
const NoiseFraction = 0.02

func (s Scale) noiseSpec(pct int) noise.Spec {
	spec := noise.Percent(pct)
	spec.Fraction = NoiseFraction
	return spec
}

func (s Scale) measure(p *netmodel.Platform, spec noise.Spec, lib libmodel.Library, op imb.Op, size, reps int) time.Duration {
	warmup := 1
	if reps == 0 {
		if s.Reps > 0 {
			reps = s.Reps
		} else {
			warmup, reps = imb.DefaultReps(size)
		}
	}
	cfg := imb.Config{
		Platform: p, Noise: spec, Library: lib, Op: op,
		Size: size, Warmup: warmup, Reps: reps,
	}
	name := fmt.Sprintf("%s/%s/%s/%s/noise%.0f%%",
		p.Name, lib.Name, opSlug(op), sizeLabel(size), 100*spec.AvgFraction())
	return s.cell(func() any {
		tb := s.traceBuffer()
		cfg.Trace = tb
		return wrapTraced(imb.Measure(cfg), tb, name)
	}, time.Duration(0)).(time.Duration)
}

// noiseTable builds one half (bcast or reduce) of Figure 7.
func (s Scale) noiseTable(id string, p *netmodel.Platform, op imb.Op) *Table {
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s with CPU data under noise injection, 4MB, %d ranks (%s)", op, p.Topo.Size(), p.Name),
		Header: []string{"library", "no-noise ms", "5% ms", "5% slow", "10% ms", "10% slow"},
		Notes: []string{
			fmt.Sprintf("noise: U(0,10ms)/U(0,20ms) @ 10Hz on a %.0f%% rank subset (see EXPERIMENTS.md)", 100*NoiseFraction),
		},
	}
	for _, lib := range libmodel.CPULibraries(p) {
		base := s.measure(p, s.noiseSpec(0), lib, op, 4*netmodel.MB, s.NoiseReps)
		n5 := s.measure(p, s.noiseSpec(5), lib, op, 4*netmodel.MB, s.NoiseReps)
		n10 := s.measure(p, s.noiseSpec(10), lib, op, 4*netmodel.MB, s.NoiseReps)
		t.AddRow(lib.Name, ms(base), ms(n5), pct(base, n5), ms(n10), pct(base, n10))
	}
	return t
}

// Fig7a: noise impact on Cori (paper Figure 7a).
func (s Scale) Fig7a() []*Table {
	p := netmodel.Cori(s.CoriNodes)
	return []*Table{
		s.noiseTable("fig7a-bcast", p, imb.Bcast),
		s.noiseTable("fig7a-reduce", p, imb.Reduce),
	}
}

// Fig7b: noise impact on Stampede2 (paper Figure 7b).
func (s Scale) Fig7b() []*Table {
	p := netmodel.Stampede2(s.Stampede2Nodes)
	return []*Table{
		s.noiseTable("fig7b-bcast", p, imb.Bcast),
		s.noiseTable("fig7b-reduce", p, imb.Reduce),
	}
}

// sizeSweep builds a libraries × message-sizes grid.
func (s Scale) sizeSweep(id, title string, p *netmodel.Platform, libs []libmodel.Library, op imb.Op, sizes []int) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"library"}}
	for _, sz := range sizes {
		t.Header = append(t.Header, sizeLabel(sz)+" ms")
	}
	for _, lib := range libs {
		row := []string{lib.Name}
		for _, sz := range sizes {
			row = append(row, ms(s.measure(p, noise.None, lib, op, sz, 0)))
		}
		t.AddRow(row...)
	}
	return t
}

func sizeLabel(sz int) string {
	switch {
	case sz >= netmodel.MB:
		return fmt.Sprintf("%dM", sz/netmodel.MB)
	case sz >= netmodel.KB:
		return fmt.Sprintf("%dK", sz/netmodel.KB)
	default:
		return fmt.Sprintf("%dB", sz)
	}
}

// fig8 builds the topology-aware comparison (paper Figure 8).
func (s Scale) fig8(id string, p *netmodel.Platform) []*Table {
	return []*Table{
		s.sizeSweep(id+"-bcast",
			fmt.Sprintf("Topology-aware Broadcast vs message size, %d ranks (%s)", p.Topo.Size(), p.Name),
			p, libmodel.TopoComparisonSet(p, false), imb.Bcast, s.Sizes),
		s.sizeSweep(id+"-reduce",
			fmt.Sprintf("Topology-aware Reduce vs message size, %d ranks (%s)", p.Topo.Size(), p.Name),
			p, libmodel.TopoComparisonSet(p, true), imb.Reduce, s.Sizes),
	}
}

// Fig8a / Fig8b: topology-aware line-ups on Cori and Stampede2.
func (s Scale) Fig8a() []*Table { return s.fig8("fig8a", netmodel.Cori(s.CoriNodes)) }
func (s Scale) Fig8b() []*Table { return s.fig8("fig8b", netmodel.Stampede2(s.Stampede2Nodes)) }

// fig9 builds the end-to-end comparison (paper Figure 9).
func (s Scale) fig9(id string, p *netmodel.Platform) []*Table {
	return []*Table{
		s.sizeSweep(id+"-bcast",
			fmt.Sprintf("Broadcast vs message size, %d ranks (%s)", p.Topo.Size(), p.Name),
			p, libmodel.CPULibraries(p), imb.Bcast, s.Sizes),
		s.sizeSweep(id+"-reduce",
			fmt.Sprintf("Reduce vs message size, %d ranks (%s)", p.Topo.Size(), p.Name),
			p, libmodel.CPULibraries(p), imb.Reduce, s.Sizes),
	}
}

// Fig9a / Fig9b: end-to-end sweeps on Cori and Stampede2.
func (s Scale) Fig9a() []*Table { return s.fig9("fig9a", netmodel.Cori(s.CoriNodes)) }
func (s Scale) Fig9b() []*Table { return s.fig9("fig9b", netmodel.Stampede2(s.Stampede2Nodes)) }

// Fig10: strong scaling with CPU data on Cori, 4 MB, 8→32 nodes (paper
// Figure 10). ADAPT runs the all-chain tree here, as in the paper, whose
// pipelined cost is independent of the process count.
func (s Scale) Fig10() []*Table {
	full := netmodel.Cori(s.CoriNodes)
	var procs []int
	ranksPerNode := full.Topo.SocketsPerNode * full.Topo.CoresPerSocket
	for nodes := s.CoriNodes / 4; nodes <= s.CoriNodes; nodes *= 2 {
		if nodes >= 1 {
			procs = append(procs, nodes*ranksPerNode)
		}
	}
	if len(procs) > 0 && procs[0] > 128 {
		procs = append([]int{128}, procs...)
		sort.Ints(procs)
	}
	var tables []*Table
	for _, op := range []imb.Op{imb.Bcast, imb.Reduce} {
		t := &Table{
			ID:     fmt.Sprintf("fig10-%s", opSlug(op)),
			Title:  fmt.Sprintf("Strong scalability of %s with CPU data, 4MB (cori)", op),
			Header: []string{"library"},
		}
		for _, np := range procs {
			t.Header = append(t.Header, fmt.Sprintf("%dp ms", np))
		}
		libs := []libmodel.Library{libmodel.IntelMPI(full), libmodel.CrayMPI(full),
			libmodel.OMPIDefault(full), libmodel.OMPIAdaptChain(full)}
		for li := range libs {
			row := []string{libs[li].Name}
			for _, np := range procs {
				sub := full.WithTopo(full.Topo.Subset(np))
				var lib libmodel.Library
				switch li {
				case 0:
					lib = libmodel.IntelMPI(sub)
				case 1:
					lib = libmodel.CrayMPI(sub)
				case 2:
					lib = libmodel.OMPIDefault(sub)
				default:
					lib = libmodel.OMPIAdaptChain(sub)
				}
				row = append(row, ms(s.measure(sub, noise.None, lib, op, 4*netmodel.MB, 0)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func opSlug(op imb.Op) string {
	if op == imb.Bcast {
		return "bcast"
	}
	return "reduce"
}

// Fig11a: GPU collectives vs message size on PSG (paper Figure 11a).
func (s Scale) Fig11a() []*Table {
	p := netmodel.PSG(s.PSGNodes)
	return []*Table{
		s.sizeSweep("fig11a-bcast",
			fmt.Sprintf("GPU Broadcast vs message size, %d nodes (%d GPUs)", p.Topo.Nodes, p.Topo.Size()),
			p, libmodel.GPULibraries(p), imb.Bcast, s.GPUSizes),
		s.sizeSweep("fig11a-reduce",
			fmt.Sprintf("GPU Reduce vs message size, %d nodes (%d GPUs)", p.Topo.Nodes, p.Topo.Size()),
			p, libmodel.GPULibraries(p), imb.Reduce, s.GPUSizes),
	}
}

// Fig11b: GPU strong scaling at 32 MB, 1→8 nodes (paper Figure 11b).
func (s Scale) Fig11b() []*Table {
	size := s.GPUSizes[len(s.GPUSizes)-1]
	var tables []*Table
	for _, op := range []imb.Op{imb.Bcast, imb.Reduce} {
		t := &Table{
			ID:     fmt.Sprintf("fig11b-%s", opSlug(op)),
			Title:  fmt.Sprintf("GPU strong scalability of %s, %s", op, sizeLabel(size)),
			Header: []string{"library"},
		}
		var nodesList []int
		for n := 1; n <= s.PSGNodes; n *= 2 {
			nodesList = append(nodesList, n)
		}
		for _, n := range nodesList {
			p := netmodel.PSG(n)
			t.Header = append(t.Header, fmt.Sprintf("%dn:%dg ms", n, p.Topo.Size()))
		}
		names := []string{"MVAPICH", "OMPI-default", "OMPI-adapt"}
		for li, name := range names {
			row := []string{name}
			for _, n := range nodesList {
				p := netmodel.PSG(n)
				libs := libmodel.GPULibraries(p)
				row = append(row, ms(s.measure(p, noise.None, libs[li], op, size, 0)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Table1: the ASP application (paper Table 1). Executes s.ASPIters
// Floyd–Warshall iterations at N = s.ASPDim on the Cori profile and
// scales to the full algorithm.
func (s Scale) Table1() []*Table {
	p := netmodel.Cori(s.CoriNodes)
	t := &Table{
		ID:     "table1",
		Title:  fmt.Sprintf("ASP (parallel Floyd–Warshall), N=%d, %d ranks (cori)", s.ASPDim, p.Topo.Size()),
		Header: []string{"library", "communication s", "total runtime s", "comm share"},
		Notes: []string{
			fmt.Sprintf("executed %d of %d iterations, scaled linearly", s.ASPIters, s.ASPDim),
		},
	}
	libs := []libmodel.Library{libmodel.CrayMPI(p), libmodel.IntelMPI(p),
		libmodel.OMPIAdapt(p), libmodel.OMPIDefault(p)}
	libs[3].Name = "OMPI-tuned"
	for _, lib := range libs {
		lib := lib
		res := s.cell(func() any {
			k := sim.New()
			w := simmpi.NewWorld(k, p, noise.None)
			tb := s.traceBuffer()
			w.Trace = tb
			var res asp.Result
			w.Spawn(func(c *simmpi.Comm) {
				r := asp.Run(c, asp.Config{
					N: s.ASPDim, Iters: s.ASPIters, ElemSize: 8, Bcast: lib.Bcast,
				}, nil)
				if c.Rank() == 0 {
					res = r
				}
			})
			k.MustRun()
			return wrapTraced(res, tb, fmt.Sprintf("table1/%s/asp", lib.Name))
		}, asp.Result{Iters: 1}).(asp.Result)
		full := res.Scaled(s.ASPDim)
		t.AddRow(lib.Name,
			fmt.Sprintf("%.2f", full.Comm.Seconds()),
			fmt.Sprintf("%.2f", full.Total.Seconds()),
			fmt.Sprintf("%.0f%%", 100*float64(full.Comm)/float64(full.Total)))
	}
	return []*Table{t}
}

// Experiments lists every paper exhibit id; Extensions lists the
// beyond-the-paper exhibits ("all" runs only the paper set).
func Experiments() []string {
	return []string{"fig7a", "fig7b", "fig8a", "fig8b", "fig9a", "fig9b",
		"fig10", "fig11a", "fig11b", "table1"}
}

// Extensions lists the exhibit ids that go beyond the paper.
func Extensions() []string {
	return []string{"ext-nvlink", "ext-placement", "ext-allreduce", "ext-chaos", "ext-crash", "ext-fec"}
}

// RunTables generates one exhibit's tables (or every paper exhibit for
// "all") at the given scale.
func RunTables(id string, s Scale) ([]*Table, error) {
	gens := map[string]func() []*Table{
		"fig7a": s.Fig7a, "fig7b": s.Fig7b,
		"fig8a": s.Fig8a, "fig8b": s.Fig8b,
		"fig9a": s.Fig9a, "fig9b": s.Fig9b,
		"fig10": s.Fig10, "fig11a": s.Fig11a, "fig11b": s.Fig11b,
		"table1":        s.Table1,
		"ext-nvlink":    s.ExtNVLink,
		"ext-placement": s.ExtPlacement,
		"ext-allreduce": s.ExtAllreduce,
		"ext-chaos":     s.ExtChaos,
		"ext-crash":     s.ExtCrash,
		"ext-fec":       s.ExtFEC,
	}
	if id == "all" {
		var out []*Table
		for _, name := range Experiments() {
			out = append(out, gens[name]()...)
		}
		return out, nil
	}
	gen, ok := gens[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v, extensions %v, all)",
			id, Experiments(), Extensions())
	}
	return gen(), nil
}

// Run generates one exhibit (or "all") at the given scale, printing to w.
func Run(id string, s Scale, w io.Writer) error {
	tables, err := RunTables(id, s)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}
