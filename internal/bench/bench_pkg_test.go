package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"library", "a ms", "b ms"},
		Notes:  []string{"a note"},
	}
	tb.AddRow("x", "1.000", "2.000")
	tb.AddRow("longer-name", "10.000", "20.000")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== t: demo", "library", "longer-name", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.500" {
		t.Errorf("ms = %q", got)
	}
	if got := pct(time.Millisecond, 2*time.Millisecond); got != "+100%" {
		t.Errorf("pct = %q", got)
	}
	if got := speedup(10*time.Millisecond, 2*time.Millisecond); got != "5.0x" {
		t.Errorf("speedup = %q", got)
	}
	if pct(0, time.Second) != "n/a" || speedup(time.Second, 0) != "n/a" {
		t.Error("zero guards broken")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Quick(), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// parseCell reads a "1.234" milliseconds cell.
func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// TestFig9aQuickShape runs the end-to-end sweep at Quick scale and checks
// the headline: ADAPT wins at the largest size.
func TestFig9aQuickShape(t *testing.T) {
	tables := Quick().Fig9a()
	if len(tables) != 2 {
		t.Fatalf("fig9a has %d tables", len(tables))
	}
	bcast := tables[0]
	last := len(bcast.Header) - 1
	var adapt, worst float64
	for _, row := range bcast.Rows {
		v := parseCell(t, row[last])
		if row[0] == "OMPI-adapt" {
			adapt = v
		} else if v > worst {
			worst = v
		}
	}
	if adapt <= 0 || adapt >= worst {
		t.Fatalf("ADAPT (%.3f ms) should beat the worst library (%.3f ms) at 4MB", adapt, worst)
	}
}

// TestFig10QuickFlat checks ADAPT's strong-scaling flatness: time grows
// far slower than process count.
func TestFig10QuickFlat(t *testing.T) {
	tables := Quick().Fig10()
	bcast := tables[0]
	for _, row := range bcast.Rows {
		if row[0] != "OMPI-adapt" {
			continue
		}
		first := parseCell(t, row[1])
		lastV := parseCell(t, row[len(row)-1])
		if lastV > 3*first {
			t.Fatalf("ADAPT scaling not flat: %.3f → %.3f ms", first, lastV)
		}
		return
	}
	t.Fatal("no OMPI-adapt row in fig10")
}

// TestFig11aQuickShape checks the GPU headline: ADAPT wins bcast and wins
// reduce by a large factor (offload + staging).
func TestFig11aQuickShape(t *testing.T) {
	tables := Quick().Fig11a()
	for ti, tb := range tables {
		last := len(tb.Header) - 1
		var adapt, best float64
		best = 1e18
		for _, row := range tb.Rows {
			v := parseCell(t, row[last])
			if row[0] == "OMPI-adapt" {
				adapt = v
			} else if v < best {
				best = v
			}
		}
		if adapt >= best {
			t.Fatalf("table %d: ADAPT (%.3f) should beat best baseline (%.3f)", ti, adapt, best)
		}
		if ti == 1 && best/adapt < 2 {
			t.Fatalf("GPU reduce gap only %.1fx; expected offload to dominate", best/adapt)
		}
	}
}

// TestTable1Quick checks the ASP headline: ADAPT has the lowest total
// runtime and the lowest communication share.
func TestTable1Quick(t *testing.T) {
	tb := Quick().Table1()[0]
	var adaptTotal, worstTotal float64
	for _, row := range tb.Rows {
		total := parseCell(t, row[2])
		if row[0] == "OMPI-adapt" {
			adaptTotal = total
		} else if total > worstTotal {
			worstTotal = total
		}
	}
	if adaptTotal <= 0 || adaptTotal >= worstTotal {
		t.Fatalf("ADAPT total %.2fs should beat worst %.2fs", adaptTotal, worstTotal)
	}
}

// TestFig7QuickOrdering: ADAPT must show the smallest 10%-noise slowdown.
func TestFig7QuickOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep is slow")
	}
	tabs := Quick().Fig7a()
	bcast := tabs[0]
	slow := map[string]float64{}
	for _, row := range bcast.Rows {
		base := parseCell(t, row[1])
		ten := parseCell(t, row[4])
		slow[row[0]] = ten / base
	}
	for name, v := range slow {
		if name == "OMPI-adapt" {
			continue
		}
		if slow["OMPI-adapt"] > v*1.5 {
			t.Errorf("ADAPT slowdown (%.2fx) should not far exceed %s (%.2fx)", slow["OMPI-adapt"], name, v)
		}
	}
}

func TestExtensionExhibitsQuick(t *testing.T) {
	s := Quick()
	for _, id := range Extensions() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, s, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "== "+id) {
				t.Fatalf("missing table header:\n%s", buf.String())
			}
		})
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
