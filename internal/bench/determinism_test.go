package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adapt/internal/comm"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trace"
)

// fig7aSmallestCell runs fig7a's cheapest cell — the first CPU library's
// noise-injected 4 MB broadcast on the Quick Cori machine, one warmup and
// two timed reps — with a full event trace attached, and returns the
// serialized virtual-time trajectory plus the kernel's final clock and
// event count.
func fig7aSmallestCell(t *testing.T) ([]byte, time.Duration, uint64) {
	t.Helper()
	s := Quick()
	p := netmodel.Cori(s.CoriNodes)
	lib := libmodel.CPULibraries(p)[0]
	k := sim.New()
	w := simmpi.NewWorld(k, p, s.noiseSpec(5))
	tb := &trace.Buffer{}
	w.Trace = tb
	w.Spawn(func(c *simmpi.Comm) {
		for seq := 0; seq < 3; seq++ {
			lib.Bcast(c, 0, comm.Sized(4*netmodel.MB), seq)
		}
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range tb.Records {
		fmt.Fprintf(&buf, "%d %d %d %d %d %d %d\n",
			r.At, r.Dur, r.Rank, r.Kind, r.Peer, r.Tag, r.Size)
	}
	return buf.Bytes(), end, k.Dispatched()
}

// TestFig7aTrajectoryDeterminism: two runs of the same cell on fresh
// kernels produce byte-identical virtual-time trajectories — the
// guarantee the kernel rebuild (monomorphic heap, closure free-lists,
// pooled buffers) must not disturb.
func TestFig7aTrajectoryDeterminism(t *testing.T) {
	tr1, end1, n1 := fig7aSmallestCell(t)
	tr2, end2, n2 := fig7aSmallestCell(t)
	if end1 != end2 || n1 != n2 {
		t.Fatalf("runs diverged: (%v, %d events) vs (%v, %d events)", end1, n1, end2, n2)
	}
	if !bytes.Equal(tr1, tr2) {
		t.Fatalf("virtual-time trajectories differ (%d vs %d bytes)", len(tr1), len(tr2))
	}
	if len(tr1) == 0 {
		t.Fatal("empty trajectory: trace not attached?")
	}
}

// renderTables prints tables the way adaptbench does, for byte comparison.
func renderTables(tables []*Table) []byte {
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Fprint(&buf)
	}
	return buf.Bytes()
}

// TestParallelSweepMatchesSerial: a -j 4 sweep must be bit-identical to
// the serial sweep — every cell owns a private deterministic kernel and
// the replay pass consumes results in serial call order.
func TestParallelSweepMatchesSerial(t *testing.T) {
	s := Quick()
	s.CoriNodes = 2
	s.NoiseReps = 2
	for _, id := range []string{"fig7a", "table1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial, err := RunTables(id, s)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := RunTablesParallel(id, s, 4)
			if err != nil {
				t.Fatal(err)
			}
			got, want := renderTables(parallel), renderTables(serial)
			if !bytes.Equal(got, want) {
				t.Fatalf("parallel sweep differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestTraceSweepByteIdentical: the canonical Chrome trace captured by a
// -j 4 sweep must be byte-identical to the serial sweep's — runs are
// appended at result-consumption time, which follows serial call order
// regardless of worker count.
func TestTraceSweepByteIdentical(t *testing.T) {
	s := Quick()
	s.CoriNodes = 2
	s.NoiseReps = 2
	render := func(jobs int) []byte {
		s.CTrace = &TraceSink{}
		if _, err := RunTablesParallel("fig7a", s, jobs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, s.CTrace.Runs()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if len(serial) == 0 || bytes.Count(serial, []byte("adaptRuns")) == 0 {
		t.Fatal("serial sweep produced no canonical trace")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("canonical trace differs between -j 1 (%d bytes) and -j 4 (%d bytes)",
			len(serial), len(parallel))
	}
	rerun := render(1)
	if !bytes.Equal(serial, rerun) {
		t.Fatal("canonical trace differs between identical reruns")
	}
}

// TestTraceSinkCapCountsDrops: a tiny per-cell cap must truncate, not
// crash, and carry the drop count into the snapshot.
func TestTraceSinkCapCountsDrops(t *testing.T) {
	s := Quick()
	s.CoriNodes = 2
	s.NoiseReps = 2
	s.CTrace = &TraceSink{Cap: 100}
	if _, err := RunTables("table1", s); err != nil {
		t.Fatal(err)
	}
	runs := s.CTrace.Runs()
	if len(runs) == 0 {
		t.Fatal("no runs collected")
	}
	for _, r := range runs {
		if len(r.Records) > 100 {
			t.Fatalf("run %q holds %d records above cap", r.Name, len(r.Records))
		}
		if r.Dropped == 0 {
			t.Fatalf("run %q expected drops at cap 100", r.Name)
		}
	}
}
