package bench

import (
	"sync"

	"adapt/internal/trace"
)

// TraceSink collects one causal trace run per experiment cell. Runs are
// appended when cell results are *consumed* — inline on the serial path,
// during the deterministic replay pass under -j N — so the collected
// order (and hence the exported Chrome trace) is byte-identical no
// matter how many workers executed the cells.
type TraceSink struct {
	// Cap bounds each cell's trace buffer (0 = unbounded). Overflowing
	// cells drop further events and carry a drop count into the run.
	Cap int

	mu   sync.Mutex
	runs []trace.Run
}

// add appends one cell's snapshot in consumption order.
func (ts *TraceSink) add(r trace.Run) {
	ts.mu.Lock()
	ts.runs = append(ts.runs, r)
	ts.mu.Unlock()
}

// Runs returns the collected traces in consumption (serial call) order.
func (ts *TraceSink) Runs() []trace.Run {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]trace.Run(nil), ts.runs...)
}

// traced wraps a cell result that carries a trace snapshot. Scale.cell
// unwraps it at consumption time, routing the run into the sink and the
// value to the table builder.
type traced struct {
	val any
	run trace.Run
}

// traceBuffer returns the buffer to attach to one cell's world (nil when
// tracing is off).
func (s Scale) traceBuffer() *trace.Buffer {
	if s.CTrace == nil {
		return nil
	}
	return &trace.Buffer{Cap: s.CTrace.Cap}
}

// wrapTraced packages a cell value with its buffer's snapshot; a nil
// buffer passes the value through untouched.
func wrapTraced(v any, tb *trace.Buffer, name string) any {
	if tb == nil {
		return v
	}
	return traced{val: v, run: tb.Snapshot(name)}
}
