// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: one generator per exhibit,
// each printing the same rows/series the paper reports. Absolute numbers
// come from the simulator's Hockney parameters; the reproduction targets
// the paper's shapes (who wins, rough factors, crossovers) — see
// EXPERIMENTS.md for the side-by-side record.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one exhibit: a titled grid plus free-form notes.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first) for plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// pct formats a slowdown of cur relative to base.
func pct(base, cur time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("+%.0f%%", 100*(float64(cur)/float64(base)-1))
}

// speedup formats base/cur as a × factor.
func speedup(slow, fast time.Duration) string {
	if fast <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", float64(slow)/float64(fast))
}
