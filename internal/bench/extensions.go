package bench

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/imb"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// This file holds extension exhibits beyond the paper's evaluation,
// exercising the future-work directions §7 sketches: more collectives,
// richer hardware lanes (NVLink), and sensitivity to process placement.

// runOnce executes body on a fresh world and returns the makespan.
func runOnce(p *netmodel.Platform, spec noise.Spec, body func(c *simmpi.Comm)) time.Duration {
	k := sim.New()
	w := simmpi.NewWorld(k, p, spec)
	w.Spawn(body)
	return k.MustRun()
}

// ExtNVLink compares the GPU collectives on the PSG machine with and
// without NVLink peer lanes: NVLink absorbs the intra-socket PCIe traffic
// that the §4.1 staging buffer otherwise has to manage.
func (s Scale) ExtNVLink() []*Table {
	t := &Table{
		ID:     "ext-nvlink",
		Title:  fmt.Sprintf("GPU collectives, PCIe peers vs NVLink peers, %d nodes", s.PSGNodes),
		Header: []string{"configuration", "bcast ms", "reduce ms"},
		Notes:  []string{"extension beyond the paper: the intro's NVLink lane, modelled"},
	}
	size := s.GPUSizes[len(s.GPUSizes)-1]
	for _, pf := range []*netmodel.Platform{netmodel.PSG(s.PSGNodes), netmodel.PSGNVLink(s.PSGNodes)} {
		lib := libmodel.OMPIAdapt(pf)
		b := s.measure(pf, noise.None, lib, imb.Bcast, size, 0)
		r := s.measure(pf, noise.None, lib, imb.Reduce, size, 0)
		t.AddRow("OMPI-adapt on "+pf.Name, ms(b), ms(r))
	}
	return []*Table{t}
}

// ExtPlacement shows why topology awareness matters: the same 4 MB
// broadcast under the three mpirun placements. The topology-aware ADAPT
// tree adapts to the placement; the rank-order chain of the tuned module
// degrades as consecutive ranks move further apart.
func (s Scale) ExtPlacement() []*Table {
	t := &Table{
		ID:     "ext-placement",
		Title:  "Broadcast 4MB vs process placement (cori)",
		Header: []string{"placement", "OMPI-adapt ms", "OMPI-default ms", "default/adapt"},
		Notes:  []string{"extension beyond the paper: --map-by sensitivity"},
	}
	base := netmodel.Cori(s.CoriNodes)
	for _, pl := range []hwloc.Placement{hwloc.PlaceByCore, hwloc.PlaceBySocket, hwloc.PlaceByNode} {
		topo := hwloc.NewPlaced(base.Topo.Nodes, base.Topo.SocketsPerNode, base.Topo.CoresPerSocket, pl)
		p := base.WithTopo(topo)
		adapt := s.measure(p, noise.None, libmodel.OMPIAdapt(p), imb.Bcast, 4*netmodel.MB, 0)
		def := s.measure(p, noise.None, libmodel.OMPIDefault(p), imb.Bcast, 4*netmodel.MB, 0)
		t.AddRow(pl.String(), ms(adapt), ms(def), speedup(def, adapt))
	}
	return []*Table{t}
}

// ExtAllreduce compares the allreduce algorithms in the repository: the
// fused event-driven tree pipeline (internal/core), sequential
// reduce+bcast, the ring, and Rabenseifner's reduce-scatter+allgather.
func (s Scale) ExtAllreduce() []*Table {
	p := netmodel.Cori(s.CoriNodes)
	tree := trees.Topology(p.Topo, 0, libmodel.AdaptReduceConfig())
	t := &Table{
		ID:     "ext-allreduce",
		Title:  fmt.Sprintf("Allreduce algorithms vs message size, %d ranks (cori)", p.Topo.Size()),
		Header: []string{"algorithm"},
		Notes:  []string{"extension beyond the paper: §2.2.3 composition, measured"},
	}
	sizes := s.Sizes
	for _, sz := range sizes {
		t.Header = append(t.Header, sizeLabel(sz)+" ms")
	}
	algos := []struct {
		name string
		run  func(c *simmpi.Comm, size, seq int)
	}{
		{"fused tree (event-driven)", func(c *simmpi.Comm, size, seq int) {
			opt := core.DefaultOptions()
			opt.Seq = seq
			core.Allreduce(c, tree, comm.Sized(size), opt)
		}},
		{"reduce + bcast (sequential)", func(c *simmpi.Comm, size, seq int) {
			opt := core.DefaultOptions()
			opt.Seq = seq
			red := core.Reduce(c, tree, comm.Sized(size), opt)
			opt.Seq = seq + 1
			msg := comm.Sized(size)
			if c.Rank() == 0 {
				msg = red
			}
			core.Bcast(c, tree, msg, opt)
		}},
		{"ring (reduce-scatter+allgather)", func(c *simmpi.Comm, size, seq int) {
			opt := coll.DefaultOptions()
			opt.Seq = seq
			coll.AllreduceRing(c, comm.Sized(size), opt)
		}},
		{"rabenseifner (rs + event allgather)", func(c *simmpi.Comm, size, seq int) {
			opt := coll.DefaultOptions()
			opt.Seq = seq
			coll.AllreduceRabenseifner(c, comm.Sized(size), opt)
		}},
	}
	for _, a := range algos {
		row := []string{a.name}
		for _, sz := range sizes {
			sz := sz
			run := a.run
			// One warmup + a barrier-fenced two-op train, as imb.Measure.
			d := s.cell(func() any {
				var t0, t1 time.Duration
				runOnce(p, noise.None, func(c *simmpi.Comm) {
					run(c, sz, 0)
					coll.Barrier(c, 999)
					if c.Rank() == 0 {
						t0 = c.Now()
					}
					run(c, sz, 2)
					run(c, sz, 4)
					coll.Barrier(c, 1000)
					if c.Rank() == 0 {
						t1 = c.Now()
					}
				})
				return (t1 - t0) / 2
			}, time.Duration(0)).(time.Duration)
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}
