package bench

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/imb"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

// This file holds extension exhibits beyond the paper's evaluation,
// exercising the future-work directions §7 sketches: more collectives,
// richer hardware lanes (NVLink), and sensitivity to process placement.

// runOnce executes body on a fresh world and returns the makespan.
func runOnce(p *netmodel.Platform, spec noise.Spec, body func(c *simmpi.Comm)) time.Duration {
	k := sim.New()
	w := simmpi.NewWorld(k, p, spec)
	w.Spawn(body)
	return k.MustRun()
}

// ExtNVLink compares the GPU collectives on the PSG machine with and
// without NVLink peer lanes: NVLink absorbs the intra-socket PCIe traffic
// that the §4.1 staging buffer otherwise has to manage.
func (s Scale) ExtNVLink() []*Table {
	t := &Table{
		ID:     "ext-nvlink",
		Title:  fmt.Sprintf("GPU collectives, PCIe peers vs NVLink peers, %d nodes", s.PSGNodes),
		Header: []string{"configuration", "bcast ms", "reduce ms"},
		Notes:  []string{"extension beyond the paper: the intro's NVLink lane, modelled"},
	}
	size := s.GPUSizes[len(s.GPUSizes)-1]
	for _, pf := range []*netmodel.Platform{netmodel.PSG(s.PSGNodes), netmodel.PSGNVLink(s.PSGNodes)} {
		lib := libmodel.OMPIAdapt(pf)
		b := s.measure(pf, noise.None, lib, imb.Bcast, size, 0)
		r := s.measure(pf, noise.None, lib, imb.Reduce, size, 0)
		t.AddRow("OMPI-adapt on "+pf.Name, ms(b), ms(r))
	}
	return []*Table{t}
}

// ExtPlacement shows why topology awareness matters: the same 4 MB
// broadcast under the three mpirun placements. The topology-aware ADAPT
// tree adapts to the placement; the rank-order chain of the tuned module
// degrades as consecutive ranks move further apart.
func (s Scale) ExtPlacement() []*Table {
	t := &Table{
		ID:     "ext-placement",
		Title:  "Broadcast 4MB vs process placement (cori)",
		Header: []string{"placement", "OMPI-adapt ms", "OMPI-default ms", "default/adapt"},
		Notes:  []string{"extension beyond the paper: --map-by sensitivity"},
	}
	base := netmodel.Cori(s.CoriNodes)
	for _, pl := range []hwloc.Placement{hwloc.PlaceByCore, hwloc.PlaceBySocket, hwloc.PlaceByNode} {
		topo := hwloc.NewPlaced(base.Topo.Nodes, base.Topo.SocketsPerNode, base.Topo.CoresPerSocket, pl)
		p := base.WithTopo(topo)
		adapt := s.measure(p, noise.None, libmodel.OMPIAdapt(p), imb.Bcast, 4*netmodel.MB, 0)
		def := s.measure(p, noise.None, libmodel.OMPIDefault(p), imb.Bcast, 4*netmodel.MB, 0)
		t.AddRow(pl.String(), ms(adapt), ms(def), speedup(def, adapt))
	}
	return []*Table{t}
}

// chaosCell is one collective run under a fault plan: its makespan plus
// the fault schedule it survived.
type chaosCell struct {
	Makespan time.Duration
	Stats    faults.Stats
	Lost     int // sends that exhausted the attempt budget
}

// chaosRun executes body on a fresh world with plan installed (nil plan =
// the fault-free baseline) and DefaultRecovery handling the losses.
func chaosRun(p *netmodel.Platform, plan *faults.Plan, body func(c *simmpi.Comm)) chaosCell {
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	if plan != nil && plan.Enabled() {
		w.InstallFaults(*plan, faults.DefaultRecovery())
	}
	w.Spawn(body)
	return chaosCell{Makespan: k.MustRun(), Stats: w.FaultStats(), Lost: len(w.Failures())}
}

// ExtChaos prices the recovery machinery: broadcast and ring allreduce
// under a ladder of fault plans, reporting the makespan inflation the
// retransmission/backoff protocol pays to keep results byte-identical
// (internal/conform proves the identity; this table shows the cost).
// Scale.FaultPlan (adaptbench -faults) appends a custom plan row.
func (s Scale) ExtChaos() []*Table {
	p := netmodel.Cori(1).WithTopo(hwloc.New(4, 1, 2))
	n := p.Topo.Size()
	size := 1 * netmodel.MB
	tree := trees.Binomial(n, 0)
	t := &Table{
		ID:    "ext-chaos",
		Title: fmt.Sprintf("Collectives under fault injection, %s payload, %d ranks (cori)", sizeLabel(size), n),
		Header: []string{"fault plan", "bcast ms", "bcast slow",
			"allreduce ms", "allreduce slow", "drops", "retries", "lost"},
		Notes: []string{
			"extension beyond the paper: ack/retry recovery cost; results stay byte-identical (internal/conform)",
		},
	}
	ladder := []struct {
		name string
		text string
	}{
		{"clean", ""},
		{"lossy 5%", "seed=101; all: drop=0.05"},
		{"lossy 15% + dup", "seed=102; all: drop=0.15, dup=0.05, jitter=20us"},
		{"edge 0->1 degraded", "seed=103; link 0->1: drop=0.4, delay=50us@0.5"},
	}
	ops := []struct {
		name string
		run  func(c *simmpi.Comm)
	}{
		{"bcast", func(c *simmpi.Comm) {
			core.Bcast(c, tree, comm.Sized(size), core.DefaultOptions())
		}},
		{"allreduce", func(c *simmpi.Comm) {
			coll.AllreduceRing(c, comm.Sized(size), coll.DefaultOptions())
		}},
	}
	type planRow struct {
		name string
		plan *faults.Plan
	}
	rows := make([]planRow, 0, len(ladder)+1)
	for _, l := range ladder {
		var pl *faults.Plan
		if l.text != "" {
			plan := faults.MustParsePlan(l.text)
			pl = &plan
		}
		rows = append(rows, planRow{l.name, pl})
	}
	// Crash plans kill ranks: the plain (non-FT) collectives here would
	// deadlock. ext-crash hosts the custom crash row instead.
	if s.FaultPlan != nil && len(s.FaultPlan.Crashes) == 0 {
		rows = append(rows, planRow{"custom (-faults)", s.FaultPlan})
	}
	base := make([]time.Duration, len(ops))
	for ri, row := range rows {
		cells := make([]chaosCell, len(ops))
		for oi, op := range ops {
			plan, run := row.plan, op.run
			cells[oi] = s.cell(func() any { return chaosRun(p, plan, run) }, chaosCell{}).(chaosCell)
		}
		if ri == 0 {
			for oi := range ops {
				base[oi] = cells[oi].Makespan
			}
		}
		var drops, retries uint64
		lost := 0
		for _, c := range cells {
			drops += c.Stats.Drops
			retries += c.Stats.Retries
			lost += c.Lost
		}
		t.AddRow(row.name,
			ms(cells[0].Makespan), pct(base[0], cells[0].Makespan),
			ms(cells[1].Makespan), pct(base[1], cells[1].Makespan),
			fmt.Sprint(drops), fmt.Sprint(retries), fmt.Sprint(lost))
	}
	return []*Table{t}
}

// crashCell is one fault-tolerant collective run under a crash plan: the
// makespan plus what the failure detector did to get there.
type crashCell struct {
	Makespan  time.Duration
	Det       simmpi.DetectorStats
	Survivors int // ranks in the committed survivor mask
}

// ftRun executes one FT collective on a fresh world with plan's crash
// schedule installed (nil plan = crash-free baseline).
func ftRun(p *netmodel.Platform, plan *faults.Plan, body func(c *simmpi.Comm) core.FTResult) crashCell {
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	if plan != nil && plan.Enabled() {
		w.InstallFaults(*plan, faults.DefaultRecovery())
	}
	var cell crashCell
	w.Spawn(func(c *simmpi.Comm) {
		res := body(c)
		if c.Rank() != 0 {
			return
		}
		for _, live := range res.Survivors {
			if live {
				cell.Survivors++
			}
		}
	})
	cell.Makespan = k.MustRun()
	cell.Det = w.DetectorStats()
	// The root may be the crash target; count survivors from the world's
	// own death mask in that case.
	if cell.Survivors == 0 {
		for _, dead := range w.Crashed() {
			if !dead {
				cell.Survivors++
			}
		}
	}
	return cell
}

// ExtCrash prices fail-stop recovery: the fault-tolerant broadcast and
// reduce under a ladder of crash@rank plans, reporting the makespan the
// detector leases and tree repair add on top of the crash-free FT run.
// A crash-bearing -faults plan (e.g. "crash@3") appends a custom row.
func (s Scale) ExtCrash() []*Table {
	p := netmodel.Cori(1).WithTopo(hwloc.New(8, 1, 1))
	n := p.Topo.Size()
	size := 1 * netmodel.MB
	tree := trees.Binomial(n, 0)
	t := &Table{
		ID:    "ext-crash",
		Title: fmt.Sprintf("Fail-stop crashes under FT collectives, %s payload, %d ranks (cori)", sizeLabel(size), n),
		Header: []string{"crash plan", "bcast ms", "bcast slow",
			"reduce ms", "reduce slow", "suspects", "confirms", "repairs", "survivors"},
		Notes: []string{
			"extension beyond the paper: failure detector + tree self-healing; survivors get byte-identical results (internal/conform)",
		},
	}
	ladder := []struct {
		name string
		text string
	}{
		{"clean", ""},
		{"leaf crash (rank 7)", "seed=201; crash@7"},
		{"interior crash (rank 4)", "seed=202; crash@4:after1"},
	}
	type planRow struct {
		name string
		plan *faults.Plan
	}
	rows := make([]planRow, 0, len(ladder)+1)
	for _, l := range ladder {
		var pl *faults.Plan
		if l.text != "" {
			plan := faults.MustParsePlan(l.text)
			pl = &plan
		}
		rows = append(rows, planRow{l.name, pl})
	}
	if s.FaultPlan != nil && len(s.FaultPlan.Crashes) > 0 {
		rows = append(rows, planRow{"custom (-faults)", s.FaultPlan})
	}
	ops := []func(c *simmpi.Comm) core.FTResult{
		func(c *simmpi.Comm) core.FTResult {
			return core.BcastFT(c, tree, comm.Sized(size), core.DefaultOptions())
		},
		func(c *simmpi.Comm) core.FTResult {
			return core.ReduceFT(c, tree, comm.Sized(size), core.DefaultOptions())
		},
	}
	base := make([]time.Duration, len(ops))
	for ri, row := range rows {
		cells := make([]crashCell, len(ops))
		for oi, op := range ops {
			plan, run := row.plan, op
			cells[oi] = s.cell(func() any { return ftRun(p, plan, run) }, crashCell{}).(crashCell)
		}
		if ri == 0 {
			for oi := range ops {
				base[oi] = cells[oi].Makespan
			}
		}
		det := cells[0].Det
		det.Suspects += cells[1].Det.Suspects
		det.Confirms += cells[1].Det.Confirms
		det.Repairs += cells[1].Det.Repairs
		t.AddRow(row.name,
			ms(cells[0].Makespan), pct(base[0], cells[0].Makespan),
			ms(cells[1].Makespan), pct(base[1], cells[1].Makespan),
			fmt.Sprint(det.Suspects), fmt.Sprint(det.Confirms), fmt.Sprint(det.Repairs),
			fmt.Sprint(cells[0].Survivors))
	}
	return []*Table{t}
}

// ExtAllreduce compares the allreduce algorithms in the repository: the
// fused event-driven tree pipeline (internal/core), sequential
// reduce+bcast, the ring, and Rabenseifner's reduce-scatter+allgather.
func (s Scale) ExtAllreduce() []*Table {
	p := netmodel.Cori(s.CoriNodes)
	tree := trees.Topology(p.Topo, 0, libmodel.AdaptReduceConfig())
	t := &Table{
		ID:     "ext-allreduce",
		Title:  fmt.Sprintf("Allreduce algorithms vs message size, %d ranks (cori)", p.Topo.Size()),
		Header: []string{"algorithm"},
		Notes:  []string{"extension beyond the paper: §2.2.3 composition, measured"},
	}
	sizes := s.Sizes
	for _, sz := range sizes {
		t.Header = append(t.Header, sizeLabel(sz)+" ms")
	}
	algos := []struct {
		name string
		run  func(c *simmpi.Comm, size, seq int)
	}{
		{"fused tree (event-driven)", func(c *simmpi.Comm, size, seq int) {
			opt := core.DefaultOptions()
			opt.Seq = seq
			core.Allreduce(c, tree, comm.Sized(size), opt)
		}},
		{"reduce + bcast (sequential)", func(c *simmpi.Comm, size, seq int) {
			opt := core.DefaultOptions()
			opt.Seq = seq
			red := core.Reduce(c, tree, comm.Sized(size), opt)
			opt.Seq = seq + 1
			msg := comm.Sized(size)
			if c.Rank() == 0 {
				msg = red
			}
			core.Bcast(c, tree, msg, opt)
		}},
		{"ring (reduce-scatter+allgather)", func(c *simmpi.Comm, size, seq int) {
			opt := coll.DefaultOptions()
			opt.Seq = seq
			coll.AllreduceRing(c, comm.Sized(size), opt)
		}},
		{"rabenseifner (rs + event allgather)", func(c *simmpi.Comm, size, seq int) {
			opt := coll.DefaultOptions()
			opt.Seq = seq
			coll.AllreduceRabenseifner(c, comm.Sized(size), opt)
		}},
	}
	for _, a := range algos {
		row := []string{a.name}
		for _, sz := range sizes {
			sz := sz
			run := a.run
			// One warmup + a barrier-fenced two-op train, as imb.Measure.
			d := s.cell(func() any {
				var t0, t1 time.Duration
				runOnce(p, noise.None, func(c *simmpi.Comm) {
					run(c, sz, 0)
					coll.Barrier(c, 999)
					if c.Rank() == 0 {
						t0 = c.Now()
					}
					run(c, sz, 2)
					run(c, sz, 4)
					coll.Barrier(c, 1000)
					if c.Rank() == 0 {
						t1 = c.Now()
					}
				})
				return (t1 - t0) / 2
			}, time.Duration(0)).(time.Duration)
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}
