package bench

import (
	"runtime"
	"sync"
)

// Parallel experiment sweeps.
//
// Every cell of every exhibit — one (platform, noise law, library, op,
// size) point — runs on its own private deterministic simulation kernel,
// so independent cells can execute on independent OS threads without any
// shared mutable state and still produce bit-identical numbers.
//
// The generators, however, are written as straight-line table-building
// code. Rather than restructuring each one, the sweep runs a generator
// twice around a record/execute/replay pivot:
//
//  1. record: the generator runs with cell evaluation stubbed out; each
//     cell's closure (capturing its full configuration) is appended to a
//     work list and a zero value is returned. Table scaffolding built in
//     this pass is discarded.
//  2. execute: the work list runs on a bounded worker pool. Cells are
//     deterministic functions of their captured configuration, so the
//     execution order is irrelevant to the values produced.
//  3. replay: the generator runs again; cell evaluations are answered
//     from the results, in call order. Generators are deterministic, so
//     the i-th call in the replay pass is the i-th recorded cell.
//
// The serial path (jobs ≤ 1, or Scale.sweep == nil) never touches any of
// this: cells evaluate inline, exactly as before.

type sweepMode uint8

const (
	sweepRecord sweepMode = iota + 1
	sweepReplay
)

// sweeper carries the record/replay state through a generator run.
type sweeper struct {
	mode  sweepMode
	cells []func() any
	out   []any
	next  int
}

// cell routes one experiment-cell evaluation. zero is the value returned
// during the throwaway record pass.
func (s Scale) cell(fn func() any, zero any) any {
	sw := s.sweep
	if sw == nil {
		return s.unwrap(fn())
	}
	switch sw.mode {
	case sweepRecord:
		sw.cells = append(sw.cells, fn)
		return zero
	case sweepReplay:
		v := sw.out[sw.next]
		sw.next++
		return s.unwrap(v)
	}
	panic("bench: sweeper in unknown mode")
}

// unwrap peels a traced cell result: the run goes to the sink (in
// consumption order — serial call order even under -j N), the value to
// the caller. Plain values pass through.
func (s Scale) unwrap(v any) any {
	if tr, ok := v.(traced); ok {
		if s.CTrace != nil {
			s.CTrace.add(tr.run)
		}
		return tr.val
	}
	return v
}

// execute runs the recorded cells on jobs workers. A panicking cell (a
// simulated deadlock, say) is re-panicked on the caller after all workers
// drain, matching the serial behaviour of crashing the sweep.
func (sw *sweeper) execute(jobs int) {
	sw.out = make([]any, len(sw.cells))
	if jobs > len(sw.cells) {
		jobs = len(sw.cells)
	}
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failure any
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				func() {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if failure == nil {
								failure = p
							}
							mu.Unlock()
						}
					}()
					sw.out[i] = sw.cells[i]()
				}()
			}
		}()
	}
	for i := range sw.cells {
		work <- i
	}
	close(work)
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}

// DefaultJobs is the default sweep width: one worker per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// RunTablesParallel generates one exhibit's tables (or every paper
// exhibit for "all") with independent experiment cells spread over jobs
// workers. Output is bit-identical to RunTables: cells own private
// deterministic kernels, and the assembled tables consume their results
// in the serial call order. jobs ≤ 1 is exactly RunTables.
func RunTablesParallel(id string, s Scale, jobs int) ([]*Table, error) {
	if jobs <= 1 {
		return RunTables(id, s)
	}
	sw := &sweeper{mode: sweepRecord}
	s.sweep = sw
	if _, err := RunTables(id, s); err != nil {
		return nil, err
	}
	sw.execute(jobs)
	sw.mode = sweepReplay
	return RunTables(id, s)
}
