package comm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTagRoundTrip(t *testing.T) {
	cases := []struct {
		kind CollKind
		seq  int
		seg  int
	}{
		{KindBcast, 0, 0},
		{KindReduce, 1, 42},
		{KindBarrier, SeqWrap - 1, 1<<24 - 1},
		{KindAllreduce, 12345, 678},
	}
	for _, c := range cases {
		tag := MakeTag(c.kind, c.seq, c.seg)
		if tag.Kind() != c.kind || tag.Seq() != c.seq || tag.Seg() != c.seg {
			t.Errorf("MakeTag(%v,%d,%d) round-tripped to (%v,%d,%d)",
				c.kind, c.seq, c.seg, tag.Kind(), tag.Seq(), tag.Seg())
		}
	}
}

func TestTagRoundTripQuick(t *testing.T) {
	f := func(kindSeed uint8, seqSeed, segSeed uint32) bool {
		kind := CollKind(kindSeed % 10)
		seq := int(seqSeed) & tagSeqMask
		seg := int(segSeed) & tagSegMask
		tag := MakeTag(kind, seq, seg)
		return tag.Kind() == kind && tag.Seq() == seq && tag.Seg() == seg && tag >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTagUniqueAcrossSegments(t *testing.T) {
	seen := map[Tag]bool{}
	for seg := 0; seg < 100; seg++ {
		for seq := 0; seq < 10; seq++ {
			tag := MakeTag(KindBcast, seq, seg)
			if seen[tag] {
				t.Fatalf("duplicate tag for seq=%d seg=%d", seq, seg)
			}
			seen[tag] = true
		}
	}
}

func TestTagMatches(t *testing.T) {
	tag := MakeTag(KindBcast, 1, 2)
	if !AnyTag.Matches(tag) {
		t.Error("AnyTag must match everything")
	}
	if !tag.Matches(tag) {
		t.Error("tag must match itself")
	}
	if tag.Matches(MakeTag(KindBcast, 1, 3)) {
		t.Error("different segments must not match")
	}
}

func TestMakeTagPanicsOutOfRange(t *testing.T) {
	for _, c := range []struct{ seq, seg int }{{-1, 0}, {0, -1}, {SeqWrap, 0}, {0, 1 << 24}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeTag(%d,%d) should panic", c.seq, c.seg)
				}
			}()
			MakeTag(KindBcast, c.seq, c.seg)
		}()
	}
}
