package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype identifies the element type of a reduction payload.
type Datatype uint8

const (
	Float64 Datatype = iota
	Int64
	Byte
)

// ElemSize returns the size in bytes of one element.
func (d Datatype) ElemSize() int {
	switch d {
	case Float64, Int64:
		return 8
	case Byte:
		return 1
	}
	panic(fmt.Sprintf("comm: unknown datatype %d", d))
}

func (d Datatype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Byte:
		return "byte"
	}
	return fmt.Sprintf("Datatype(%d)", uint8(d))
}

// Op is a predefined reduction operation. All predefined ops are
// associative and commutative, so trees may combine partial results in any
// order (floating-point results are reproducible here because the
// simulator is deterministic; the live runtime combines in tree order).
type Op uint8

const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
	OpBAnd
	OpBOr
	OpBXor
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpBAnd:
		return "band"
	case OpBOr:
		return "bor"
	case OpBXor:
		return "bxor"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Apply folds src into dst element-wise: dst = dst ⊕ src. Both slices must
// have the same length, a multiple of dt.ElemSize(). Apply is the "CPU
// reduction kernel"; cost accounting is the caller's job (Comm.Compute).
func (o Op) Apply(dst, src []byte, dt Datatype) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("comm: reduce length mismatch %d != %d", len(dst), len(src)))
	}
	es := dt.ElemSize()
	if len(dst)%es != 0 {
		panic(fmt.Sprintf("comm: reduce buffer %dB not a multiple of element size %d", len(dst), es))
	}
	switch dt {
	case Float64:
		for i := 0; i+8 <= len(dst); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(o.foldF64(a, b)))
		}
	case Int64:
		for i := 0; i+8 <= len(dst); i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(o.foldI64(a, b)))
		}
	case Byte:
		for i := range dst {
			dst[i] = o.foldByte(dst[i], src[i])
		}
	default:
		panic("comm: unknown datatype")
	}
}

func (o Op) foldF64(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic(fmt.Sprintf("comm: op %s not defined for float64", o))
}

func (o Op) foldI64(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	case OpBXor:
		return a ^ b
	}
	panic(fmt.Sprintf("comm: op %s not defined for int64", o))
}

func (o Op) foldByte(a, b byte) byte {
	switch o {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	case OpBXor:
		return a ^ b
	}
	panic(fmt.Sprintf("comm: op %s not defined for byte", o))
}

// EncodeFloat64s packs a float64 slice into a fresh byte buffer.
func EncodeFloat64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// DecodeFloat64s unpacks a byte buffer produced by EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("comm: float64 buffer length not a multiple of 8")
	}
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// EncodeInt64s packs an int64 slice into a fresh byte buffer.
func EncodeInt64s(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// DecodeInt64s unpacks a byte buffer produced by EncodeInt64s.
func DecodeInt64s(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic("comm: int64 buffer length not a multiple of 8")
	}
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
