package comm

import "time"

// Status describes a completed operation. For receives, Source/RecvTag/Msg
// are filled in from the matched message; for sends they echo the posted
// destination and tag. Err is non-nil when the operation completed
// unsuccessfully — under fault injection, a send whose every transmission
// attempt went unacknowledged carries a *faults.TimeoutError naming the
// edge and the lost segment.
type Status struct {
	Source int
	Tag    Tag
	Msg    Msg
	Err    error
}

// Request is a handle to an in-flight non-blocking operation.
type Request interface {
	// Test reports completion without blocking. Once it returns true it
	// keeps returning the same Status.
	Test() (Status, bool)
	// IsSend reports whether the request is a send (vs a receive).
	IsSend() bool
}

// ComputeKind classifies local work for cost accounting. The live runtime
// performs the work for real and treats Compute as a no-op; the simulator
// charges kind-specific per-byte costs from the platform profile.
type ComputeKind uint8

const (
	// ComputeReduce is CPU reduction arithmetic (γ_cpu per byte).
	ComputeReduce ComputeKind = iota
	// ComputeCopy is a host memory copy (unexpected-message drain, pack).
	ComputeCopy
	// ComputeApp is application work (e.g. ASP's relaxation loop).
	ComputeApp
)

// Comm is one rank's endpoint of a communicator. A Comm value is owned by
// exactly one goroutine (the rank); all methods must be called from it.
// Completion callbacks registered with OnComplete run on the owning
// goroutine, from inside Progress, Wait, WaitAny or WaitAll — never
// concurrently with rank code. This mirrors Open MPI's single-threaded
// progress-engine discipline that ADAPT relies on.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int

	// Send performs a blocking standard-mode send: it returns when the
	// message buffer may be reused, which for large (rendezvous-protocol)
	// messages implies the receiver has posted a matching receive. This
	// implicit handshake is the synchronization that lets noise propagate
	// through blocking collectives (paper §2.1.1).
	Send(dst int, tag Tag, msg Msg)
	// Recv blocks until a message matching (src, tag) arrives; src may be
	// AnySource and tag may be AnyTag.
	Recv(src int, tag Tag) Status

	// Isend starts a non-blocking send.
	Isend(dst int, tag Tag, msg Msg) Request
	// Irecv posts a non-blocking receive for a message matching (src, tag).
	Irecv(src int, tag Tag) Request

	// Wait blocks until r completes, firing any ready callbacks meanwhile.
	Wait(r Request) Status
	// WaitAll blocks until every request completes.
	WaitAll(rs []Request)
	// WaitAny blocks until at least one request completes and returns its
	// index. Completed requests must be removed by the caller before the
	// next WaitAny (as with MPI_Waitany's inactive handles, a completed
	// request passed again returns immediately).
	WaitAny(rs []Request) (int, Status)

	// OnComplete attaches a completion callback to a request. If r has
	// already completed the callback fires during the next Progress/Wait.
	// This is the low-level hook Open MPI lacks at the MPI_Isend level and
	// that ADAPT adds below it (paper §2.2.1).
	OnComplete(r Request, fn func(Status))
	// Progress blocks until at least one pending completion is processed,
	// then fires all ready callbacks and returns. It panics if no
	// operation is in flight (a stuck progress loop is a bug).
	Progress()
	// TryProgress fires any ready callbacks without blocking and reports
	// whether it did anything — the MPI_Test-style poke applications use
	// to drive collectives forward from inside compute loops.
	TryProgress() bool

	// Compute performs (live) or charges (simulated) n bytes of local work.
	Compute(n int, kind ComputeKind)

	// Now returns elapsed time on this rank's clock: virtual time in the
	// simulator, wall time in the live runtime.
	Now() time.Duration
}

// DeviceComm is implemented by comms on accelerator platforms. Collectives
// that exploit GPUs type-assert to it and fall back gracefully otherwise.
type DeviceComm interface {
	Comm
	// IrecvIn posts a non-blocking receive whose buffer lives in the given
	// memory space. Receiving inter-node traffic into MemHost instead of
	// MemDevice is the §4.1 staging optimization: it skips the delivery
	// hop across the GPU's PCIe link.
	IrecvIn(src int, tag Tag, space MemSpace) Request
	// DeviceReduce offloads reduction of n bytes to the rank's GPU on an
	// asynchronous stream. The returned request completes when the kernel
	// finishes; the CPU rank is free meanwhile (paper §4.2).
	DeviceReduce(n int) Request
	// AsyncCopy starts an asynchronous copy of n bytes between host and
	// device memory across the rank's PCIe link (paper §4.1's staging
	// flush). from/to must be MemHost/MemDevice in some order.
	AsyncCopy(n int, from, to MemSpace) Request
	// DefaultSpace reports where this rank's payload buffers live.
	DefaultSpace() MemSpace
}
