package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpSumFloat64(t *testing.T) {
	a := EncodeFloat64s([]float64{1, 2, 3})
	b := EncodeFloat64s([]float64{10, 20, 30})
	OpSum.Apply(a, b, Float64)
	got := DecodeFloat64s(a)
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOpsFloat64Table(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{OpSum, 1.5, 2.5, 4},
		{OpProd, 3, 4, 12},
		{OpMax, -1, 7, 7},
		{OpMax, 9, 7, 9},
		{OpMin, -1, 7, -1},
		{OpMin, 2, 0.5, 0.5},
	}
	for _, c := range cases {
		a := EncodeFloat64s([]float64{c.a})
		c.op.Apply(a, EncodeFloat64s([]float64{c.b}), Float64)
		if got := DecodeFloat64s(a)[0]; got != c.want {
			t.Errorf("%s(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOpsInt64Table(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpSum, 5, -3, 2},
		{OpProd, 7, 6, 42},
		{OpMax, -5, -3, -3},
		{OpMin, -5, -3, -5},
		{OpBAnd, 0b1100, 0b1010, 0b1000},
		{OpBOr, 0b1100, 0b1010, 0b1110},
		{OpBXor, 0b1100, 0b1010, 0b0110},
	}
	for _, c := range cases {
		a := EncodeInt64s([]int64{c.a})
		c.op.Apply(a, EncodeInt64s([]int64{c.b}), Int64)
		if got := DecodeInt64s(a)[0]; got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOpByte(t *testing.T) {
	a := []byte{1, 200, 7}
	OpMax.Apply(a, []byte{3, 100, 7}, Byte)
	if a[0] != 3 || a[1] != 200 || a[2] != 7 {
		t.Fatalf("byte max wrong: %v", a)
	}
}

// Property: integer Sum/Max/Min/Bit-ops are associative and commutative,
// so any tree combination order yields the same result.
func TestIntOpsAssocCommQuick(t *testing.T) {
	for _, op := range []Op{OpSum, OpMax, OpMin, OpBAnd, OpBOr, OpBXor} {
		op := op
		f := func(x, y, z int64) bool {
			// commutativity
			a1 := EncodeInt64s([]int64{x})
			op.Apply(a1, EncodeInt64s([]int64{y}), Int64)
			a2 := EncodeInt64s([]int64{y})
			op.Apply(a2, EncodeInt64s([]int64{x}), Int64)
			if DecodeInt64s(a1)[0] != DecodeInt64s(a2)[0] {
				return false
			}
			// associativity: (x op y) op z == x op (y op z)
			l := EncodeInt64s([]int64{x})
			op.Apply(l, EncodeInt64s([]int64{y}), Int64)
			op.Apply(l, EncodeInt64s([]int64{z}), Int64)
			yz := EncodeInt64s([]int64{y})
			op.Apply(yz, EncodeInt64s([]int64{z}), Int64)
			r := EncodeInt64s([]int64{x})
			op.Apply(r, yz, Int64)
			return DecodeInt64s(l)[0] == DecodeInt64s(r)[0]
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}

// Property: float64 Max/Min are exactly associative/commutative; Sum is
// commutative (a+b == b+a exactly in IEEE 754).
func TestFloatOpsQuick(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		for _, op := range []Op{OpSum, OpMax, OpMin} {
			a := EncodeFloat64s([]float64{x})
			op.Apply(a, EncodeFloat64s([]float64{y}), Float64)
			b := EncodeFloat64s([]float64{y})
			op.Apply(b, EncodeFloat64s([]float64{x}), Float64)
			if DecodeFloat64s(a)[0] != DecodeFloat64s(b)[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	OpSum.Apply(make([]byte, 8), make([]byte, 16), Float64)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := []float64{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	got := DecodeFloat64s(EncodeFloat64s(f))
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("float64 round-trip[%d]: %v != %v", i, got[i], f[i])
		}
	}
	iv := []int64{0, -1, 1 << 62, math.MinInt64}
	gi := DecodeInt64s(EncodeInt64s(iv))
	for i := range iv {
		if gi[i] != iv[i] {
			t.Fatalf("int64 round-trip[%d]: %v != %v", i, gi[i], iv[i])
		}
	}
}

func TestStringMethods(t *testing.T) {
	if Float64.String() != "float64" || Int64.String() != "int64" || Byte.String() != "byte" {
		t.Error("datatype names wrong")
	}
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin, OpBAnd, OpBOr, OpBXor} {
		if op.String() == "" || op.String()[0] == 'O' {
			t.Errorf("op %d name %q", op, op.String())
		}
	}
	if Bytes([]byte{1}).String() == "" || Sized(5).String() == "" {
		t.Error("msg strings empty")
	}
	if MemHost.String() != "host" || MemDevice.String() != "device" || MemDefault.String() != "default" {
		t.Error("memspace names wrong")
	}
	for k := KindP2P; k <= KindRTS; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestByteOpsAll(t *testing.T) {
	cases := []struct {
		op   Op
		a, b byte
		want byte
	}{
		{OpSum, 200, 100, 44}, // wraps mod 256
		{OpProd, 7, 3, 21},
		{OpMax, 9, 200, 200},
		{OpMin, 9, 200, 9},
		{OpBAnd, 0b1100, 0b1010, 0b1000},
		{OpBOr, 0b1100, 0b1010, 0b1110},
		{OpBXor, 0b1100, 0b1010, 0b0110},
	}
	for _, c := range cases {
		a := []byte{c.a}
		c.op.Apply(a, []byte{c.b}, Byte)
		if a[0] != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, a[0], c.want)
		}
	}
}
