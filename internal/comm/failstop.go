package comm

// Fail-stop extension of the Comm contract.
//
// A substrate that models rank crashes (a fault plan with crash rules
// installed) implements FailStop on its Comm endpoints. Collectives that
// tolerate crashes — the FT variants in internal/core — type-assert to it
// and fall back to the plain algorithms when the substrate does not
// implement it or no crash rules are armed.
//
// The model is fail-stop with a world-level lease detector: a crashed
// rank stops executing instantly, its in-flight traffic is annihilated
// (connection-teardown semantics), and after the Recovery policy's
// ConfirmAfter lease expires every surviving rank receives a death
// Notice via its out-of-band control plane. Notices are delivered to the
// rank's notice queue and consumed, on the owner goroutine, with
// TakeNotices; WaitEvent is the event-loop primitive that blocks until
// either a completion callback fires or a notice arrives.

// NoticeKind discriminates control-plane notices.
type NoticeKind uint8

const (
	// NoticeDeath: the failure detector confirmed Rank dead.
	NoticeDeath NoticeKind = iota
	// NoticeCommit: the collective with sequence Seq committed on the
	// Survivors set (root's decision, fanned out by the control plane).
	NoticeCommit
)

func (k NoticeKind) String() string {
	switch k {
	case NoticeDeath:
		return "death"
	case NoticeCommit:
		return "commit"
	}
	return "notice(?)"
}

// Notice is one out-of-band control-plane event delivered to a rank.
type Notice struct {
	Kind NoticeKind
	// Rank is the confirmed-dead rank (NoticeDeath).
	Rank int
	// Seq is the committed collective sequence number (NoticeCommit).
	Seq int
	// Survivors is the committed survivor mask (NoticeCommit); true for
	// every rank whose contribution/delivery the commit covers.
	Survivors []bool
}

// FailStop is the crash-model extension a substrate's Comm implements.
// Like Comm itself, all methods except none are owner-goroutine-only.
type FailStop interface {
	// CrashesEnabled reports whether crash rules are armed in this world.
	// When false the FT collectives run their fault-free fallback.
	CrashesEnabled() bool
	// ConfirmedDead returns a fresh per-rank mask of detector-confirmed
	// deaths as of now.
	ConfirmedDead() []bool
	// TakeNotices drains and returns this rank's pending notices, in
	// delivery order.
	TakeNotices() []Notice
	// WaitEvent blocks until at least one completion callback has fired
	// or at least one new notice has been delivered since the call began.
	// Unlike Progress it is legal with no operation in flight — a rank may
	// be waiting purely on the control plane.
	WaitEvent()
	// CancelRecv retracts a posted, still-unmatched receive: the request
	// is marked done and its callback will never fire. Returns false if
	// the receive already matched (its completion callback still runs).
	CancelRecv(r Request) bool
	// Commit fans a NoticeCommit for (seq, survivors) out to every live
	// rank's notice queue via the control plane. Root-only by convention.
	Commit(seq int, survivors []bool)
}
