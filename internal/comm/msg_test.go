package comm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentsExact(t *testing.T) {
	m := Bytes(make([]byte, 1024))
	segs := Segments(m, 256)
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}
	for i, s := range segs {
		if s.Index != i {
			t.Errorf("segment %d has index %d", i, s.Index)
		}
		if s.Offset != i*256 || s.Msg.Size != 256 {
			t.Errorf("segment %d: offset=%d size=%d", i, s.Offset, s.Msg.Size)
		}
	}
}

func TestSegmentsRagged(t *testing.T) {
	segs := Segments(Sized(1000), 256)
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}
	if last := segs[3]; last.Msg.Size != 1000-3*256 {
		t.Errorf("last segment size = %d, want %d", last.Msg.Size, 1000-3*256)
	}
}

func TestSegmentsZeroSize(t *testing.T) {
	segs := Segments(Msg{}, 128)
	if len(segs) != 1 || segs[0].Msg.Size != 0 {
		t.Fatalf("zero-size message must yield one empty segment, got %v", segs)
	}
}

func TestSegmentsPanicsOnBadSegSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segSize=0")
		}
	}()
	Segments(Sized(10), 0)
}

// Property: segmentation reassembles to the identity, for real payloads.
func TestSegmentsReassembleQuick(t *testing.T) {
	f := func(payload []byte, segSizeSeed uint16) bool {
		segSize := int(segSizeSeed)%4096 + 1
		m := Bytes(payload)
		segs := Segments(m, segSize)
		var rebuilt []byte
		total := 0
		for _, s := range segs {
			rebuilt = append(rebuilt, s.Msg.Data...)
			total += s.Msg.Size
		}
		if len(payload) == 0 {
			return len(segs) == 1 && total == 0
		}
		return bytes.Equal(rebuilt, payload) && total == len(payload) &&
			len(segs) == NumSegments(len(payload), segSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: elided segmentation conserves total size and segment count.
func TestSegmentsElidedQuick(t *testing.T) {
	f := func(sizeSeed uint32, segSizeSeed uint16) bool {
		size := int(sizeSeed) % (1 << 22)
		segSize := int(segSizeSeed)%65536 + 1
		segs := Segments(Sized(size), segSize)
		total := 0
		for i, s := range segs {
			if s.Index != i {
				return false
			}
			total += s.Msg.Size
		}
		return total == size && len(segs) == NumSegments(size, segSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestInSpace(t *testing.T) {
	m := Sized(64).InSpace(MemDevice)
	if m.Space != MemDevice || m.Size != 64 {
		t.Fatalf("InSpace mangled message: %v", m)
	}
	if !m.Elided() {
		t.Fatal("Sized message should be elided")
	}
	if Bytes([]byte{1}).Elided() {
		t.Fatal("Bytes message should not be elided")
	}
}
