package comm

import "testing"

// FuzzTagMatch exercises tag packing and wildcard matching over arbitrary
// (kind, seq, seg) coordinates and arbitrary posted-receive tags: the
// pack/extract round trip must be lossless, matching must be exactly
// {AnyTag, equality}, and String must never panic.
func FuzzTagMatch(f *testing.F) {
	f.Add(byte(1), uint32(12), uint32(4), int64(-1))
	f.Add(byte(0), uint32(0), uint32(0), int64(0))
	f.Add(byte(9), uint32(1<<24-1), uint32(1<<24-1), int64(1<<48))
	f.Add(byte(255), uint32(7), uint32(123456), int64(-2))
	f.Fuzz(func(t *testing.T, kind byte, seq, seg uint32, probeRaw int64) {
		seqN := int(seq) % SeqWrap
		segN := int(seg) % SeqWrap
		tag := MakeTag(CollKind(kind), seqN, segN)
		if tag.Kind() != CollKind(kind) || tag.Seq() != seqN || tag.Seg() != segN {
			t.Fatalf("round trip (%d,%d,%d) -> (%v,%d,%d)",
				kind, seqN, segN, tag.Kind(), tag.Seq(), tag.Seg())
		}
		if !tag.Matches(tag) {
			t.Fatal("tag does not match itself")
		}
		if !AnyTag.Matches(tag) {
			t.Fatal("AnyTag does not match")
		}
		probe := Tag(probeRaw)
		want := probe == AnyTag || probe == tag
		if got := probe.Matches(tag); got != want {
			t.Fatalf("Tag(%d).Matches(%v) = %v, want %v", probeRaw, tag, got, want)
		}
		_ = tag.String()
		_ = probe.String()
	})
}
