// Package comm defines the communication abstraction shared by the live
// in-process runtime (internal/runtime) and the discrete-event simulator
// (internal/simmpi). Collective algorithms (internal/coll, internal/core)
// are written once against the Comm interface and run unchanged on both.
package comm

import "fmt"

// MemSpace identifies which memory a message buffer lives in. It only
// matters on platforms with accelerators, where the route of a transfer
// (and therefore its cost) depends on whether the endpoints are device
// or host memory.
type MemSpace uint8

const (
	// MemDefault means "wherever this rank's payloads normally live":
	// host memory on CPU platforms, device memory on GPU platforms.
	MemDefault MemSpace = iota
	// MemHost forces host (CPU) memory, e.g. an explicit staging buffer.
	MemHost
	// MemDevice forces device (GPU) memory.
	MemDevice
)

func (s MemSpace) String() string {
	switch s {
	case MemDefault:
		return "default"
	case MemHost:
		return "host"
	case MemDevice:
		return "device"
	}
	return fmt.Sprintf("MemSpace(%d)", uint8(s))
}

// Msg is a message payload descriptor.
//
// Size is the logical byte count used for all cost accounting. Data may be
// nil (pure-simulation runs, where materializing multi-megabyte payloads
// across a thousand ranks would be wasteful) or hold exactly Size bytes
// (live runs and simulator correctness tests). Algorithms must treat a nil
// Data as "payload elided" and skip real arithmetic while still charging
// the corresponding Compute cost.
type Msg struct {
	Data  []byte
	Size  int
	Space MemSpace
}

// Bytes builds a Msg carrying real data.
func Bytes(b []byte) Msg { return Msg{Data: b, Size: len(b)} }

// Sized builds a payload-elided Msg of n logical bytes.
func Sized(n int) Msg { return Msg{Size: n} }

// InSpace returns a copy of m tagged with the given memory space.
func (m Msg) InSpace(s MemSpace) Msg { m.Space = s; return m }

// Elided reports whether the payload bytes have been elided.
func (m Msg) Elided() bool { return m.Data == nil && m.Size > 0 }

func (m Msg) String() string {
	if m.Elided() {
		return fmt.Sprintf("Msg{%dB elided %s}", m.Size, m.Space)
	}
	return fmt.Sprintf("Msg{%dB %s}", m.Size, m.Space)
}

// Segment describes one pipeline segment of a larger buffer.
type Segment struct {
	Index  int // segment number, 0-based
	Offset int // byte offset into the full buffer
	Msg    Msg
}

// Segments splits msg into ceil(Size/segSize) pipeline segments. The last
// segment may be short. segSize must be positive. A zero-size message
// yields a single empty segment so that every collective still performs
// one transfer round (matching MPI semantics for zero-count operations).
func Segments(msg Msg, segSize int) []Segment {
	if segSize <= 0 {
		panic("comm: non-positive segment size")
	}
	if msg.Size == 0 {
		return []Segment{{Index: 0, Offset: 0, Msg: Msg{Data: msg.Data, Size: 0, Space: msg.Space}}}
	}
	n := (msg.Size + segSize - 1) / segSize
	segs := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		off := i * segSize
		sz := segSize
		if off+sz > msg.Size {
			sz = msg.Size - off
		}
		var data []byte
		if msg.Data != nil {
			data = msg.Data[off : off+sz]
		}
		segs = append(segs, Segment{
			Index:  i,
			Offset: off,
			Msg:    Msg{Data: data, Size: sz, Space: msg.Space},
		})
	}
	return segs
}

// NumSegments returns how many segments Segments would produce.
func NumSegments(size, segSize int) int {
	if segSize <= 0 {
		panic("comm: non-positive segment size")
	}
	if size == 0 {
		return 1
	}
	return (size + segSize - 1) / segSize
}
