package comm

import (
	"math/bits"
	"sync"

	"adapt/internal/perf"
)

// Size-classed segment-buffer pool.
//
// Every real-payload transfer in both substrates copies bytes — the live
// runtime's eager snapshot and rendezvous pull, the simulator's
// receiver-owned payload copies — and the collectives assemble results
// from per-segment buffers. At the default 128 KB segment size a single
// 4 MB broadcast over a thousand ranks churns tens of thousands of
// identically sized slices; allocating each with make([]byte, …) makes
// the garbage collector a hidden participant in every experiment.
//
// GetBuf/PutBuf recycle those slices through power-of-two size classes
// (256 B … 64 MB). Each class is fronted by a typed, mutex-guarded
// freelist — a plain [][]byte stack — so the steady-state get/put cycle
// moves slice headers only: no interface boxing, no per-cycle
// allocation (sync.Pool alone costs one *[]byte box per recycle, which
// at collective rates is an allocation per segment). A bounded freelist
// overflows into a sync.Pool tier so bursts beyond the cap still
// recycle, with GC-driven eviction reclaiming them under memory
// pressure. Requests above the largest class fall back to plain
// allocation; Puts of foreign or undersized slices are dropped, never
// retained, so the pool cannot be poisoned by odd capacities.
//
// Ownership discipline: a buffer obtained from GetBuf is owned by exactly
// one party at a time. Callers Put only buffers they own and must not
// touch them afterwards. Receivers own their delivered payload buffers
// (both substrates hand over fresh copies), which is what lets the
// collective engines recycle a segment the moment its bytes have been
// folded or copied into the assembled result.

const (
	minBufClassBits = 8  // smallest pooled capacity: 256 B
	maxBufClassBits = 26 // largest pooled capacity: 64 MB
	numBufClasses   = maxBufClassBits - minBufClassBits + 1
)

// bufFreelist is one class's typed fast path. Pops and pushes move
// slice headers in and out of a reused backing array — zero allocations
// once the stack's array has grown to its high-water mark (bounded by
// the class cap).
type bufFreelist struct {
	mu   sync.Mutex
	bufs [][]byte
	cap  int
}

var (
	bufFree    [numBufClasses]bufFreelist
	bufClasses [numBufClasses]sync.Pool // overflow tier, GC-evictable
)

func init() {
	// Bound each freelist to ~8 MB of retained capacity, but always allow
	// at least one resident buffer and never more than 64 — small classes
	// are cheap to retain, the 64 MB class keeps exactly one.
	const retainBudget = 8 << 20
	for cls := range bufFree {
		c := retainBudget / (1 << (cls + minBufClassBits))
		if c < 1 {
			c = 1
		}
		if c > 64 {
			c = 64
		}
		bufFree[cls].cap = c
	}
}

// pop takes a full-capacity buffer off the freelist, or nil.
func (fl *bufFreelist) pop() []byte {
	fl.mu.Lock()
	n := len(fl.bufs)
	if n == 0 {
		fl.mu.Unlock()
		return nil
	}
	b := fl.bufs[n-1]
	fl.bufs[n-1] = nil
	fl.bufs = fl.bufs[:n-1]
	fl.mu.Unlock()
	return b
}

// push retains a full-capacity buffer if the class has room.
func (fl *bufFreelist) push(b []byte) bool {
	fl.mu.Lock()
	if len(fl.bufs) >= fl.cap {
		fl.mu.Unlock()
		return false
	}
	fl.bufs = append(fl.bufs, b)
	fl.mu.Unlock()
	return true
}

// bufClass returns the index of the smallest class with capacity ≥ n, or
// -1 if n exceeds the largest class.
func bufClass(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n) for n ≥ 2
	if b < minBufClassBits {
		b = minBufClassBits
	}
	if b > maxBufClassBits {
		return -1
	}
	return b - minBufClassBits
}

// GetBuf returns a byte slice of length n drawn from the pool. The
// contents of the returned slice are unspecified — callers must overwrite
// every byte they later read. Use GetBufZero when zero-fill semantics are
// required. n ≤ 0 returns nil.
func GetBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	cls := bufClass(n)
	if cls < 0 {
		perf.RecordBufGet(false)
		return make([]byte, n)
	}
	if b := bufFree[cls].pop(); b != nil {
		perf.RecordBufGet(true)
		return b[:n]
	}
	if p, _ := bufClasses[cls].Get().(*[]byte); p != nil {
		perf.RecordBufGet(true)
		return (*p)[:n]
	}
	perf.RecordBufGet(false)
	return make([]byte, n, 1<<(cls+minBufClassBits))
}

// GetBufZero is GetBuf with the returned range zeroed.
func GetBufZero(n int) []byte {
	b := GetBuf(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutBuf returns b to the pool. Only non-empty slices whose capacity is
// exactly a pool size class are retained; anything else (including
// slices never obtained from GetBuf) is silently dropped. The caller
// must not use b after the call.
//
// Zero-length slices are always dropped, whatever their capacity: an
// empty slice is how callers pass "no payload", and code holding
// msg.Data[:0] rarely means to surrender the backing array. Retaining it
// would hand memory to the next GetBuf while the original owner still
// writes through the parent slice — a poisoned size class.
func PutBuf(b []byte) {
	c := cap(b)
	if len(b) == 0 || c < 1<<minBufClassBits {
		perf.RecordBufPut(false)
		return
	}
	cls := bufClass(c)
	if cls < 0 || c != 1<<(cls+minBufClassBits) {
		perf.RecordBufPut(false)
		return
	}
	if !bufFree[cls].push(b[:c]) {
		// Overflow tier only: the boxed header is declared here so the
		// freelist fast path stays allocation-free.
		full := b[:c]
		bufClasses[cls].Put(&full)
	}
	perf.RecordBufPut(true)
}
