package comm

import (
	"math/bits"
	"sync"

	"adapt/internal/perf"
)

// Size-classed segment-buffer pool.
//
// Every real-payload transfer in both substrates copies bytes — the live
// runtime's eager snapshot and rendezvous pull, the simulator's
// receiver-owned payload copies — and the collectives assemble results
// from per-segment buffers. At the default 128 KB segment size a single
// 4 MB broadcast over a thousand ranks churns tens of thousands of
// identically sized slices; allocating each with make([]byte, …) makes
// the garbage collector a hidden participant in every experiment.
//
// GetBuf/PutBuf recycle those slices through power-of-two size classes
// (256 B … 64 MB, one sync.Pool per class). Requests above the largest
// class fall back to plain allocation; Puts of foreign or undersized
// slices are dropped, never retained, so the pool cannot be poisoned by
// odd capacities.
//
// Ownership discipline: a buffer obtained from GetBuf is owned by exactly
// one party at a time. Callers Put only buffers they own and must not
// touch them afterwards. Receivers own their delivered payload buffers
// (both substrates hand over fresh copies), which is what lets the
// collective engines recycle a segment the moment its bytes have been
// folded or copied into the assembled result.

const (
	minBufClassBits = 8  // smallest pooled capacity: 256 B
	maxBufClassBits = 26 // largest pooled capacity: 64 MB
	numBufClasses   = maxBufClassBits - minBufClassBits + 1
)

var bufClasses [numBufClasses]sync.Pool

// bufClass returns the index of the smallest class with capacity ≥ n, or
// -1 if n exceeds the largest class.
func bufClass(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n) for n ≥ 2
	if b < minBufClassBits {
		b = minBufClassBits
	}
	if b > maxBufClassBits {
		return -1
	}
	return b - minBufClassBits
}

// GetBuf returns a byte slice of length n drawn from the pool. The
// contents of the returned slice are unspecified — callers must overwrite
// every byte they later read. Use GetBufZero when zero-fill semantics are
// required. n ≤ 0 returns nil.
func GetBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	cls := bufClass(n)
	if cls < 0 {
		perf.RecordBufGet(false)
		return make([]byte, n)
	}
	if p, _ := bufClasses[cls].Get().(*[]byte); p != nil {
		perf.RecordBufGet(true)
		return (*p)[:n]
	}
	perf.RecordBufGet(false)
	return make([]byte, n, 1<<(cls+minBufClassBits))
}

// GetBufZero is GetBuf with the returned range zeroed.
func GetBufZero(n int) []byte {
	b := GetBuf(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// PutBuf returns b to the pool. Only non-empty slices whose capacity is
// exactly a pool size class are retained; anything else (including
// slices never obtained from GetBuf) is silently dropped. The caller
// must not use b after the call.
//
// Zero-length slices are always dropped, whatever their capacity: an
// empty slice is how callers pass "no payload", and code holding
// msg.Data[:0] rarely means to surrender the backing array. Retaining it
// would hand memory to the next GetBuf while the original owner still
// writes through the parent slice — a poisoned size class.
func PutBuf(b []byte) {
	c := cap(b)
	if len(b) == 0 || c < 1<<minBufClassBits {
		perf.RecordBufPut(false)
		return
	}
	cls := bufClass(c)
	if cls < 0 || c != 1<<(cls+minBufClassBits) {
		perf.RecordBufPut(false)
		return
	}
	full := b[:c]
	bufClasses[cls].Put(&full)
	perf.RecordBufPut(true)
}
