package comm

import (
	"testing"
)

func TestBufClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 256},
		{255, 256},
		{256, 256},
		{257, 512},
		{128 << 10, 128 << 10},
		{(128 << 10) + 1, 256 << 10},
		{64 << 20, 64 << 20},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("GetBuf(%d): len=%d cap=%d, want len=%d cap=%d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
		PutBuf(b)
	}
}

func TestGetBufOversizeAndZero(t *testing.T) {
	if b := GetBuf(0); b != nil {
		t.Errorf("GetBuf(0) = %v, want nil", b)
	}
	big := GetBuf((64 << 20) + 1)
	if len(big) != (64<<20)+1 {
		t.Errorf("oversize len = %d", len(big))
	}
	PutBuf(big) // dropped, must not panic
}

func TestGetBufZero(t *testing.T) {
	// Dirty a pooled buffer, return it, and check the zeroing variant.
	b := GetBuf(1024)
	for i := range b {
		b[i] = 0xAB
	}
	PutBuf(b)
	z := GetBufZero(1024)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetBufZero: byte %d = %#x", i, v)
		}
	}
	PutBuf(z)
}

func TestPutBufForeignSliceDropped(t *testing.T) {
	// A slice whose capacity is not a size class must not be retained.
	odd := make([]byte, 1000) // cap 1000 or 1024 depending on allocator…
	PutBuf(odd)               // …either way: dropped or exact class, both safe
	sub := GetBuf(4096)[:100] // subslice keeps class capacity, retained OK
	PutBuf(sub)
	got := GetBuf(4096)
	if cap(got) != 4096 {
		t.Fatalf("cap = %d", cap(got))
	}
	PutBuf(got)
}

func TestPoolReuse(t *testing.T) {
	b := GetBuf(8192)
	b[0] = 42
	PutBuf(b)
	// Not guaranteed by sync.Pool, but on a single goroutine with no GC in
	// between the buffer round-trips; mostly this asserts len/cap hygiene.
	c := GetBuf(8000)
	if cap(c) != 8192 || len(c) != 8000 {
		t.Fatalf("len=%d cap=%d", len(c), cap(c))
	}
	PutBuf(c)
}

// BenchmarkSegmentPool measures a pooled get/put cycle at the default
// 128 KB pipeline segment size — the allocation pattern of every
// real-payload collective.
func BenchmarkSegmentPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf(128 << 10)
		buf[0] = byte(i)
		PutBuf(buf)
	}
}

// BenchmarkSegmentMake is the make([]byte, …) baseline the pool replaces.
func BenchmarkSegmentMake(b *testing.B) {
	b.ReportAllocs()
	var sink []byte
	for i := 0; i < b.N; i++ {
		buf := make([]byte, 128<<10)
		buf[0] = byte(i)
		sink = buf
	}
	_ = sink
}
