package comm

import (
	"testing"

	"adapt/internal/perf"
)

func TestBufClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 256},
		{255, 256},
		{256, 256},
		{257, 512},
		{128 << 10, 128 << 10},
		{(128 << 10) + 1, 256 << 10},
		{64 << 20, 64 << 20},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("GetBuf(%d): len=%d cap=%d, want len=%d cap=%d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
		PutBuf(b)
	}
}

func TestGetBufOversizeAndZero(t *testing.T) {
	if b := GetBuf(0); b != nil {
		t.Errorf("GetBuf(0) = %v, want nil", b)
	}
	big := GetBuf((64 << 20) + 1)
	if len(big) != (64<<20)+1 {
		t.Errorf("oversize len = %d", len(big))
	}
	PutBuf(big) // dropped, must not panic
}

func TestGetBufZero(t *testing.T) {
	// Dirty a pooled buffer, return it, and check the zeroing variant.
	b := GetBuf(1024)
	for i := range b {
		b[i] = 0xAB
	}
	PutBuf(b)
	z := GetBufZero(1024)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetBufZero: byte %d = %#x", i, v)
		}
	}
	PutBuf(z)
}

func TestPutBufForeignSliceDropped(t *testing.T) {
	// A slice whose capacity is not a size class must not be retained.
	odd := make([]byte, 1000) // cap 1000 or 1024 depending on allocator…
	PutBuf(odd)               // …either way: dropped or exact class, both safe
	sub := GetBuf(4096)[:100] // subslice keeps class capacity, retained OK
	PutBuf(sub)
	got := GetBuf(4096)
	if cap(got) != 4096 {
		t.Fatalf("cap = %d", cap(got))
	}
	PutBuf(got)
}

// TestPutBufZeroLengthDropped: empty slices are "no payload" handles,
// not ownership transfers. Whatever their capacity, PutBuf must drop
// them — retaining b[:0] would alias the pool's next hand-out with the
// original owner's buffer.
func TestPutBufZeroLengthDropped(t *testing.T) {
	base := perf.Read().BufRecycled
	PutBuf(nil)
	PutBuf([]byte{})
	b := GetBuf(1024)
	PutBuf(b[:0]) // full class capacity behind it, still dropped
	if d := perf.Read().BufRecycled - base; d != 0 {
		t.Fatalf("zero-length puts retained %d buffers, want 0", d)
	}
	// The owner kept writing through b; nothing the pool now hands out may
	// alias it.
	for i := range b {
		b[i] = 0x5A
	}
	c := GetBufZero(1024)
	for i := range b {
		b[i] = 0xA5
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("pool handed out memory aliasing a zero-length put (byte %d = %#x)", i, v)
		}
	}
	PutBuf(c)
	PutBuf(b)
}

// TestPutBufSubCapacityReslices pins the classification of re-sliced
// views. A plain reslice keeps its class capacity and is retained whole;
// a three-index or tail reslice with exact-class capacity is accepted as
// that smaller class (indistinguishable from a genuine buffer — the
// ownership contract, not classification, forbids putting views of
// memory the caller still uses); any other capacity is dropped.
func TestPutBufSubCapacityReslices(t *testing.T) {
	base := perf.Read()

	short := GetBuf(4096)[:100] // cap still 4096: retained, full class recovered
	PutBuf(short)
	if got := GetBuf(4096); cap(got) != 4096 || len(got) != 4096 {
		t.Fatalf("after short-len put: len=%d cap=%d", len(got), cap(got))
	} else {
		PutBuf(got)
	}

	odd := make([]byte, 0, 300) // sub-class, non-exact capacity
	odd = append(odd, 1)
	oddBase := perf.Read().BufRecycled
	PutBuf(odd)
	mid := GetBuf(1024)[128:896] // interior view: cap 896, not a class
	PutBuf(mid)
	if d := perf.Read().BufRecycled - oddBase; d != 0 {
		t.Fatalf("non-class capacities retained %d buffers, want 0", d)
	}

	// Every retained buffer in this test matched an exact class.
	snap := perf.Read()
	puts := snap.BufPuts - base.BufPuts
	if puts == 0 {
		t.Fatal("perf counters did not move; test is not observing the pool")
	}
}

// TestPutBufExactClassViewIsUsable: a three-index view with exact-class
// capacity enters the smaller class and must come back out as a fully
// usable buffer of that class.
func TestPutBufExactClassViewIsUsable(t *testing.T) {
	parent := GetBuf(1024)
	view := parent[:512:512] // ownership of the whole parent surrendered here
	PutBuf(view)
	got := GetBuf(512)
	if len(got) != 512 || cap(got) != 512 {
		t.Fatalf("len=%d cap=%d, want 512/512", len(got), cap(got))
	}
	for i := range got {
		got[i] = byte(i)
	}
	PutBuf(got)
}

// TestParityShardSizeClasses pins the pool contract the erasure codec
// leans on (internal/fec): parity and syndrome buffers are GetBufZero'd
// at the group's padded shard length — an arbitrary size, almost never
// a class boundary — dirtied with GF(256) accumulation, and returned.
// Reconstructed shards are handed to the matched recv as a plain
// reslice to the true segment size, so when the transport later
// recycles that segment, the reslice must re-enter its full class.
// Regressions here silently poison every FEC group that follows.
func TestParityShardSizeClasses(t *testing.T) {
	// Odd shard lengths straddling class boundaries, like real groups of
	// mixed-size eager segments padded to the longest member.
	for _, n := range []int{300, 512, 513, 4095, 8 << 10, (8 << 10) + 1} {
		par := GetBufZero(n)
		if len(par) != n {
			t.Fatalf("GetBufZero(%d): len=%d", n, len(par))
		}
		for i, v := range par {
			if v != 0 {
				t.Fatalf("GetBufZero(%d): dirty parity byte %d = %#x", n, i, v)
			}
		}
		for i := range par { // the codec XOR-accumulates in place
			par[i] ^= byte(i * 7)
		}
		cl := cap(par)
		PutBuf(par)
		got := GetBuf(cl)
		if cap(got) != cl || len(got) != cl {
			t.Fatalf("class %d after parity round trip: len=%d cap=%d", cl, len(got), cap(got))
		}
		PutBuf(got)
	}

	// A reconstructed shard: syndrome buffer resliced to the true segment
	// size (smaller than the padded shard length). Recycling the reslice
	// must recover the whole class, and the next zeroed hand-out of that
	// class must carry no stale syndrome bytes.
	synd := GetBufZero(1000) // class 1024
	for i := range synd {
		synd[i] = 0xC3
	}
	seg := synd[:700] // data[i] = synd[l][:sizes[i]]
	PutBuf(seg)
	z := GetBufZero(1024)
	if cap(z) != 1024 {
		t.Fatalf("reconstructed-shard reslice lost its class: cap=%d", cap(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("stale syndrome byte %d = %#x after recycle", i, v)
		}
	}
	PutBuf(z)
}

func TestPoolReuse(t *testing.T) {
	b := GetBuf(8192)
	b[0] = 42
	PutBuf(b)
	// Not guaranteed by sync.Pool, but on a single goroutine with no GC in
	// between the buffer round-trips; mostly this asserts len/cap hygiene.
	c := GetBuf(8000)
	if cap(c) != 8192 || len(c) != 8000 {
		t.Fatalf("len=%d cap=%d", len(c), cap(c))
	}
	PutBuf(c)
}

// TestSegmentPoolZeroAlloc pins the freelist fast path: a steady-state
// get/put cycle must not allocate — no sync.Pool interface boxing, no
// slice-header heap escapes. One warm-up cycle seeds the freelist.
func TestSegmentPoolZeroAlloc(t *testing.T) {
	for _, n := range []int{256, 8 << 10, 128 << 10} {
		n := n
		PutBuf(GetBuf(n)) // warm the class
		allocs := testing.AllocsPerRun(100, func() {
			b := GetBuf(n)
			b[0] = 1
			PutBuf(b)
		})
		if allocs != 0 {
			t.Errorf("GetBuf/PutBuf(%d): %.1f allocs/op, want 0", n, allocs)
		}
	}
}

// BenchmarkSegmentPool measures a pooled get/put cycle at the default
// 128 KB pipeline segment size — the allocation pattern of every
// real-payload collective.
func BenchmarkSegmentPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf(128 << 10)
		buf[0] = byte(i)
		PutBuf(buf)
	}
}

// BenchmarkSegmentMake is the make([]byte, …) baseline the pool replaces.
func BenchmarkSegmentMake(b *testing.B) {
	b.ReportAllocs()
	var sink []byte
	for i := 0; i < b.N; i++ {
		buf := make([]byte, 128<<10)
		buf[0] = byte(i)
		sink = buf
	}
	_ = sink
}
