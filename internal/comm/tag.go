package comm

import "fmt"

// Tag is a message tag. Collective implementations encode the collective
// kind, an operation sequence number and the segment index into the tag so
// that concurrent collectives and pipeline segments never mis-match.
type Tag int64

// Wildcards for Recv/Irecv. AnyTag matches every tag; AnySource (used as a
// source rank) matches every sender.
const (
	AnyTag    Tag = -1
	AnySource int = -1
)

// Tag layout: | kind (8 bits) | op sequence (24 bits) | segment (24 bits) |.
const (
	tagSegBits = 24
	tagSeqBits = 24
	tagSegMask = 1<<tagSegBits - 1
	tagSeqMask = 1<<tagSeqBits - 1
)

// CollKind identifies a collective operation family in a tag.
type CollKind uint8

const (
	KindP2P CollKind = iota
	KindBcast
	KindReduce
	KindScatter
	KindGather
	KindAllgather
	KindAllreduce
	KindAlltoall
	KindBarrier
	KindRTS // internal rendezvous control
	// Fail-stop control traffic (fault-tolerant collectives, core/ft.go).
	// Two distinct kinds so an orphan re-parented directly to the root can
	// never have its re-drive request FIFO-matched against its completion
	// notification: both use seg = sender rank under the same sequence.
	KindDone    // "I hold the full payload" notification toward the root
	KindRedrive // re-drive request (missing-segment bitmap) to a new parent
	// KindFec tags erasure-coding parity traffic: parity shards ride the
	// wire under (KindFec, group id, parity index) so their fault
	// verdicts and trace spans are distinguishable from data segments.
	KindFec
)

func (k CollKind) String() string {
	switch k {
	case KindP2P:
		return "p2p"
	case KindBcast:
		return "bcast"
	case KindReduce:
		return "reduce"
	case KindScatter:
		return "scatter"
	case KindGather:
		return "gather"
	case KindAllgather:
		return "allgather"
	case KindAllreduce:
		return "allreduce"
	case KindAlltoall:
		return "alltoall"
	case KindBarrier:
		return "barrier"
	case KindRTS:
		return "rts"
	case KindDone:
		return "done"
	case KindRedrive:
		return "redrive"
	case KindFec:
		return "fec"
	}
	return fmt.Sprintf("CollKind(%d)", uint8(k))
}

// MakeTag packs (kind, seq, segment) into a Tag. seq and seg must fit in
// 24 bits each; collective sequence numbers wrap via SeqWrap.
func MakeTag(kind CollKind, seq, seg int) Tag {
	if seg < 0 || seg > tagSegMask {
		panic(fmt.Sprintf("comm: segment %d out of tag range", seg))
	}
	if seq < 0 || seq > tagSeqMask {
		panic(fmt.Sprintf("comm: sequence %d out of tag range", seq))
	}
	return Tag(uint64(kind)<<(tagSegBits+tagSeqBits) | uint64(seq)<<tagSegBits | uint64(seg))
}

// SeqWrap is the modulus for collective sequence numbers.
const SeqWrap = tagSeqMask + 1

// Kind extracts the collective kind from a tag.
func (t Tag) Kind() CollKind { return CollKind(uint64(t) >> (tagSegBits + tagSeqBits)) }

// Seq extracts the operation sequence number from a tag.
func (t Tag) Seq() int { return int(uint64(t) >> tagSegBits & tagSeqMask) }

// Seg extracts the segment index from a tag.
func (t Tag) Seg() int { return int(uint64(t) & tagSegMask) }

// Matches reports whether a posted receive tag (possibly AnyTag) matches a
// message tag.
func (t Tag) Matches(msgTag Tag) bool { return t == AnyTag || t == msgTag }

// String renders a tag for diagnostics: kind, sequence and segment.
func (t Tag) String() string {
	if t == AnyTag {
		return "any"
	}
	return fmt.Sprintf("%s/%d/seg%d", t.Kind(), t.Seq(), t.Seg())
}
