package trees

import "fmt"

// Two-tree broadcast support (Sanders, Speck, Träff [31], cited in paper
// §2.2.4 as one of the "advanced trees" ADAPT can plug in): the message
// is split in half and each half flows down its own tree; the trees are
// built so that a rank that is interior (forwarding, bandwidth-bound) in
// one tree is a leaf (receive-only) in the other, so every rank's egress
// carries roughly one message worth of bytes instead of two — the full-
// bandwidth property a single binary tree lacks.

// inorderBST returns parent/children links of a balanced BST over the
// virtual labels [lo, hi], whose *inorder traversal* is lo..hi. Leaves
// sit at even offsets from lo, interiors at odd offsets (for a perfect
// range); the BST root is the range's midpoint.
func inorderBST(lo, hi int, parent map[int]int, children map[int][]int) int {
	mid := lo + (hi-lo)/2
	if mid > lo {
		l := inorderBST(lo, mid-1, parent, children)
		parent[l] = mid
		children[mid] = append(children[mid], l)
	}
	if mid < hi {
		r := inorderBST(mid+1, hi, parent, children)
		parent[r] = mid
		children[mid] = append(children[mid], r)
	}
	return mid
}

// TwoTree builds the two spanning trees of the two-tree broadcast, both
// rooted at `root`. The non-root ranks are relabeled 0..P−2; tree A is an
// inorder-balanced BST over those labels, tree B the same BST over the
// labels cyclically shifted by one, which swaps (most) leaf and interior
// roles. The root feeds each BST's top directly.
func TwoTree(size, root int) (a, b *Tree) {
	checkArgs(size, root)
	if size == 1 {
		t := Chain(1, 0)
		return t, t
	}
	// others[i] = actual rank of virtual label i, i in [0, size-1).
	others := make([]int, 0, size-1)
	for r := 0; r < size; r++ {
		if r != root {
			others = append(others, r)
		}
	}
	build := func(shift int) *Tree {
		parent := map[int]int{}
		children := map[int][]int{}
		top := inorderBST(0, len(others)-1, parent, children)
		t := &Tree{
			Root:     root,
			Parent:   make([]int, size),
			Children: make([][]int, size),
		}
		// Map a virtual label to an actual rank, applying the cyclic
		// shift that differentiates the two trees.
		rankOf := func(v int) int { return others[(v+shift)%len(others)] }
		t.Parent[root] = -1
		t.Children[root] = []int{rankOf(top)}
		for v := range others {
			r := rankOf(v)
			if v == top {
				t.Parent[r] = root
			} else {
				t.Parent[r] = rankOf(parent[v])
			}
			for _, cv := range children[v] {
				t.Children[r] = append(t.Children[r], rankOf(cv))
			}
		}
		if err := t.Validate(); err != nil {
			panic(fmt.Sprintf("trees: two-tree invalid: %v", err))
		}
		return t
	}
	return build(0), build(1)
}
