package trees

import (
	"fmt"
	"testing"
)

func TestTwoTreeValid(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 16, 33, 100} {
		for _, root := range []int{0, size / 2, size - 1} {
			a, b := TwoTree(size, root)
			if err := a.Validate(); err != nil {
				t.Fatalf("size %d root %d: tree A: %v", size, root, err)
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("size %d root %d: tree B: %v", size, root, err)
			}
			if a.Root != root || b.Root != root {
				t.Fatalf("size %d: roots %d/%d, want %d", size, a.Root, b.Root, root)
			}
		}
	}
}

func TestTwoTreeDegreeBound(t *testing.T) {
	a, b := TwoTree(64, 0)
	// BST interiors have ≤2 children; the root feeds one child per tree.
	if a.MaxDegree() > 2 || b.MaxDegree() > 2 {
		t.Fatalf("degrees %d/%d exceed binary", a.MaxDegree(), b.MaxDegree())
	}
	if len(a.Children[0]) != 1 || len(b.Children[0]) != 1 {
		t.Fatal("root must feed exactly one child per tree")
	}
}

func TestTwoTreeLeafInteriorComplement(t *testing.T) {
	// The point of the construction: a rank forwarding in one tree should
	// be (mostly) receive-only in the other, so per-rank egress stays
	// near one message's worth. Check that the vast majority of non-root
	// ranks are a leaf in at least one tree.
	for _, size := range []int{17, 32, 65, 128} {
		a, b := TwoTree(size, 0)
		doubleInterior := 0
		for r := 1; r < size; r++ {
			if !a.IsLeaf(r) && !b.IsLeaf(r) {
				doubleInterior++
			}
		}
		if frac := float64(doubleInterior) / float64(size-1); frac > 0.15 {
			t.Fatalf("size %d: %.0f%% of ranks interior in both trees", size, 100*frac)
		}
	}
}

func TestTwoTreeCombinedEgressBalanced(t *testing.T) {
	// Summed over both trees, no rank should carry more than 3 child
	// slots (2 in one tree + ≤1 in the other); a plain binary tree gives
	// interior ranks 2 slots each carrying the FULL message (4 halves
	// worth), while two-tree interiors carry ≤3 halves.
	for _, size := range []int{31, 64, 200} {
		a, b := TwoTree(size, 0)
		for r := 1; r < size; r++ {
			if n := len(a.Children[r]) + len(b.Children[r]); n > 3 {
				t.Fatalf("size %d rank %d: %d combined child slots", size, r, n)
			}
		}
	}
}

func TestTwoTreeSizeOne(t *testing.T) {
	a, b := TwoTree(1, 0)
	if a.Size() != 1 || b.Size() != 1 {
		t.Fatal("degenerate two-tree wrong")
	}
}

func ExampleTwoTree() {
	a, b := TwoTree(8, 0)
	fmt.Println("A:", a)
	fmt.Println("B:", b)
	// Output:
	// A: Tree{root=0 size=8 depth=3 maxdeg=2}
	// B: Tree{root=0 size=8 depth=3 maxdeg=2}
}
