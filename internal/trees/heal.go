package trees

import "fmt"

// Heal returns the tree with every rank marked dead spliced out: the
// children of a dead rank re-parent to its nearest live ancestor (the
// grandparent, or further up if a whole chain died), taking the dead
// rank's position in the ancestor's child order. Child orderings are
// preserved — a dead child's (live) subtree roots replace it in place —
// so the topology-aware level ordering of the original builder survives
// the repair, and every rank computing Heal from the same death set gets
// the identical repaired tree with no coordination.
//
// Dead ranks keep their slots (Parent = -1, no children) so rank indices
// stay stable; the result is a spanning tree over the live ranks only
// and deliberately fails Validate, which demands full-world spanning.
//
// Heal panics if the root itself is dead — no repair can replace the
// root's role; collectives surface that as a RankFailedError instead.
func (t *Tree) Heal(dead []bool) *Tree {
	n := t.Size()
	if len(dead) != n {
		panic(fmt.Sprintf("trees: death mask has %d entries for a %d-rank tree", len(dead), n))
	}
	if dead[t.Root] {
		panic(fmt.Sprintf("trees: cannot heal around a dead root (rank %d)", t.Root))
	}
	nt := &Tree{Root: t.Root, Parent: make([]int, n), Children: make([][]int, n)}
	for r := range nt.Parent {
		nt.Parent[r] = -1
	}
	// liveKids flattens r's child list, replacing each dead child by its
	// own live kids, recursively and in order.
	var liveKids func(r int, out []int) []int
	liveKids = func(r int, out []int) []int {
		for _, ch := range t.Children[r] {
			if dead[ch] {
				out = liveKids(ch, out)
			} else {
				out = append(out, ch)
			}
		}
		return out
	}
	var build func(r int)
	build = func(r int) {
		kids := liveKids(r, nil)
		if len(kids) > 0 {
			nt.Children[r] = kids
		}
		for _, ch := range kids {
			nt.Parent[ch] = r
			build(ch)
		}
	}
	build(t.Root)
	return nt
}
