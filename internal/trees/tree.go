// Package trees builds the communication trees ADAPT plugs its collectives
// into (paper §2.2.4, §3.2.1): chain, k-ary, binary, binomial, k-nomial and
// flat trees, plus the single-communicator topology-aware tree that glues
// per-hardware-level sub-trees through leader processes.
package trees

import "fmt"

// Tree is a rooted spanning tree over ranks [0, Size). For a broadcast,
// data flows root → leaves; a reduce uses the same tree with flow reversed.
// Children orderings are significant: collectives start transfers in child
// order, and the topology-aware builder puts slower-lane children first so
// their transfers start as early as possible.
type Tree struct {
	Root     int
	Parent   []int   // Parent[r] = parent of rank r; -1 for the root
	Children [][]int // Children[r] = ordered children of rank r
}

// Size returns the number of ranks spanned by the tree.
func (t *Tree) Size() int { return len(t.Parent) }

// NumChildren returns how many children rank r has.
func (t *Tree) NumChildren(r int) int { return len(t.Children[r]) }

// IsLeaf reports whether rank r has no children.
func (t *Tree) IsLeaf(r int) bool { return len(t.Children[r]) == 0 }

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Depth() int {
	depth := make([]int, t.Size())
	max := 0
	var walk func(r int)
	walk = func(r int) {
		for _, c := range t.Children[r] {
			depth[c] = depth[r] + 1
			if depth[c] > max {
				max = depth[c]
			}
			walk(c)
		}
	}
	walk(t.Root)
	return max
}

// MaxDegree returns the largest child count of any rank.
func (t *Tree) MaxDegree() int {
	max := 0
	for _, cs := range t.Children {
		if len(cs) > max {
			max = len(cs)
		}
	}
	return max
}

// Validate checks the spanning-tree invariants: exactly one root, Parent
// and Children mutually consistent, every rank reachable from the root
// exactly once (spanning and acyclic).
func (t *Tree) Validate() error {
	n := t.Size()
	if n == 0 {
		return fmt.Errorf("trees: empty tree")
	}
	if len(t.Children) != n {
		return fmt.Errorf("trees: Parent has %d entries but Children has %d", n, len(t.Children))
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("trees: root %d out of range [0,%d)", t.Root, n)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("trees: root %d has parent %d, want -1", t.Root, t.Parent[t.Root])
	}
	for r := 0; r < n; r++ {
		if r != t.Root && (t.Parent[r] < 0 || t.Parent[r] >= n) {
			return fmt.Errorf("trees: rank %d has parent %d out of range", r, t.Parent[r])
		}
		seen := map[int]bool{}
		for _, c := range t.Children[r] {
			if c < 0 || c >= n {
				return fmt.Errorf("trees: rank %d has child %d out of range", r, c)
			}
			if seen[c] {
				return fmt.Errorf("trees: rank %d lists child %d twice", r, c)
			}
			seen[c] = true
			if t.Parent[c] != r {
				return fmt.Errorf("trees: rank %d lists child %d whose parent is %d", r, c, t.Parent[c])
			}
		}
	}
	// Reachability (also proves acyclicity given the consistency above).
	visited := make([]bool, n)
	stack := []int{t.Root}
	count := 0
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[r] {
			return fmt.Errorf("trees: rank %d visited twice (cycle)", r)
		}
		visited[r] = true
		count++
		stack = append(stack, t.Children[r]...)
	}
	if count != n {
		return fmt.Errorf("trees: only %d of %d ranks reachable from root", count, n)
	}
	return nil
}

func (t *Tree) String() string {
	return fmt.Sprintf("Tree{root=%d size=%d depth=%d maxdeg=%d}",
		t.Root, t.Size(), t.Depth(), t.MaxDegree())
}

// shift maps a virtual tree rooted at vrank 0 onto actual ranks so that
// the actual root is `root`: actual = (virtual + root) mod size.
func shift(size, root, vrank int) int { return (vrank + root) % size }
