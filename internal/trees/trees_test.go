package trees

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adapt/internal/hwloc"
)

// Every builder must produce a valid spanning tree for every (size, root).
func TestBuildersValidateQuick(t *testing.T) {
	for _, b := range Builders() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			f := func(sizeSeed, rootSeed uint16) bool {
				size := int(sizeSeed)%200 + 1
				root := int(rootSeed) % size
				tree := b.Build(size, root)
				if tree.Root != root || tree.Size() != size {
					return false
				}
				return tree.Validate() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestChainShape(t *testing.T) {
	tree := Chain(5, 2)
	// Virtual chain 0-1-2-3-4 shifted by root 2: 2→3→4→0→1.
	wantParent := []int{4, 0, -1, 2, 3}
	for r, p := range wantParent {
		if tree.Parent[r] != p {
			t.Errorf("Parent[%d] = %d, want %d", r, tree.Parent[r], p)
		}
	}
	if tree.Depth() != 4 || tree.MaxDegree() != 1 {
		t.Errorf("chain depth=%d maxdeg=%d, want 4,1", tree.Depth(), tree.MaxDegree())
	}
}

func TestBinaryShape(t *testing.T) {
	tree := Binary(7, 0)
	want := [][]int{{1, 2}, {3, 4}, {5, 6}, nil, nil, nil, nil}
	for r := range want {
		if len(tree.Children[r]) != len(want[r]) {
			t.Fatalf("children[%d] = %v, want %v", r, tree.Children[r], want[r])
		}
		for i := range want[r] {
			if tree.Children[r][i] != want[r][i] {
				t.Fatalf("children[%d] = %v, want %v", r, tree.Children[r], want[r])
			}
		}
	}
	if tree.Depth() != 2 {
		t.Errorf("binary(7) depth = %d, want 2", tree.Depth())
	}
}

func TestBinomialShape(t *testing.T) {
	tree := Binomial(8, 0)
	// Root's children largest stride first: 4, 2, 1.
	got := tree.Children[0]
	want := []int{4, 2, 1}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("binomial root children = %v, want %v", got, want)
	}
	if tree.Parent[6] != 4 || tree.Parent[5] != 4 || tree.Parent[7] != 6 {
		t.Fatalf("binomial parents wrong: %v", tree.Parent)
	}
	if tree.Depth() != 3 {
		t.Errorf("binomial(8) depth = %d, want 3", tree.Depth())
	}
}

func TestBinomialDepthIsLogP(t *testing.T) {
	for _, c := range []struct{ size, depth int }{{1, 0}, {2, 1}, {4, 2}, {16, 4}, {1024, 10}, {1000, 9}} {
		tree := Binomial(c.size, 0)
		if d := tree.Depth(); d != c.depth {
			t.Errorf("binomial(%d) depth = %d, want %d", c.size, d, c.depth)
		}
	}
}

func TestKnomialDegreeBound(t *testing.T) {
	// k-nomial root degree is (k-1)·ceil(log_k size).
	tree := Knomial(4)(64, 0)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d != 3 {
		t.Errorf("4-nomial(64) depth = %d, want 3", d)
	}
	if deg := len(tree.Children[0]); deg != 9 {
		t.Errorf("4-nomial(64) root degree = %d, want 9", deg)
	}
}

func TestFlatShape(t *testing.T) {
	tree := Flat(6, 3)
	if tree.Depth() != 1 || tree.MaxDegree() != 5 {
		t.Fatalf("flat: depth=%d maxdeg=%d", tree.Depth(), tree.MaxDegree())
	}
	for r := 0; r < 6; r++ {
		if r == 3 {
			continue
		}
		if tree.Parent[r] != 3 {
			t.Fatalf("flat parent[%d] = %d, want 3", r, tree.Parent[r])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tree := Binary(8, 0)
	tree.Parent[5] = 0 // inconsistent with Children
	if tree.Validate() == nil {
		t.Fatal("Validate must reject inconsistent parent")
	}
	tree = Binary(8, 0)
	tree.Children[3] = append(tree.Children[3], 1) // 1 gets two parents
	if tree.Validate() == nil {
		t.Fatal("Validate must reject duplicated child")
	}
	if (&Tree{Root: 0, Parent: []int{0}, Children: [][]int{nil}}).Validate() == nil {
		t.Fatal("Validate must reject root with non -1 parent")
	}
}

func TestTopologyTreeValid(t *testing.T) {
	topo := hwloc.New(4, 2, 4) // 32 ranks
	for _, root := range []int{0, 1, 7, 31} {
		tree := Topology(topo, root, ChainConfig())
		if err := tree.Validate(); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if tree.Root != root {
			t.Fatalf("root = %d, want %d", tree.Root, root)
		}
	}
}

func TestTopologyTreeChainStructure(t *testing.T) {
	// Figure 5's machine: 3 nodes, 2 sockets, 4 cores; all-chain config.
	topo := hwloc.New(3, 2, 4)
	tree := Topology(topo, 0, ChainConfig())
	// Node leaders are 0, 8, 16 and form a chain 0→8→16.
	if tree.Parent[8] != 0 || tree.Parent[16] != 8 {
		t.Fatalf("node-leader chain broken: parent[8]=%d parent[16]=%d", tree.Parent[8], tree.Parent[16])
	}
	// Socket leaders on node 0: rank 0 (socket 0) and rank 4 (socket 1);
	// inter-socket chain 0→4; intra-socket chain 4→5→6→7.
	if tree.Parent[4] != 0 {
		t.Fatalf("socket leader 4 has parent %d, want 0", tree.Parent[4])
	}
	if tree.Parent[5] != 4 || tree.Parent[6] != 5 || tree.Parent[7] != 6 {
		t.Fatalf("intra-socket chain broken on socket 1: %v", tree.Parent[:8])
	}
	// Rank 0's children must be ordered slowest lane first: inter-node (8),
	// then inter-socket (4), then intra-socket (1).
	cs := tree.Children[0]
	if len(cs) != 3 || cs[0] != 8 || cs[1] != 4 || cs[2] != 1 {
		t.Fatalf("root children = %v, want [8 4 1]", cs)
	}
}

func TestTopologyTreeEdgeLevels(t *testing.T) {
	// Each tree edge must stay within its level: an intra-socket edge must
	// connect ranks on one socket, etc. Equivalently: a child is on a
	// different node than its parent only if both are node leaders.
	topo := hwloc.New(4, 2, 8)
	cfg := TopoConfig{
		InterNode:   Builder{"binomial", Binomial},
		InterSocket: Builder{"chain", Chain},
		IntraSocket: Builder{"binary", Binary},
	}
	tree := Topology(topo, 5, cfg)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.Size(); r++ {
		p := tree.Parent[r]
		if p == -1 {
			continue
		}
		switch topo.LevelBetween(r, p) {
		case hwloc.LevelNode:
			// Both endpoints must be the smallest rank (or root) on their node.
			for _, e := range []int{r, p} {
				first := topo.RanksOnNode(topo.NodeOf(e))[0]
				if e != first && e != 5 {
					t.Fatalf("inter-node edge %d→%d touches non-leader %d", p, r, e)
				}
			}
		case hwloc.LevelSocket:
			if topo.NodeOf(r) != topo.NodeOf(p) {
				t.Fatalf("inter-socket edge %d→%d crosses nodes", p, r)
			}
		}
	}
}

func TestTopologyRootIsItsLeaders(t *testing.T) {
	// The root must head its node and socket groups even when it is not
	// the smallest rank there (paper: the broadcast root starts the data).
	topo := hwloc.New(2, 2, 4)
	tree := Topology(topo, 6, ChainConfig()) // rank 6: node 0, socket 1, core 2
	if tree.Parent[6] != -1 {
		t.Fatalf("root has parent %d", tree.Parent[6])
	}
	// Rank 0's socket (node 0 socket 0) leader must hang below rank 6.
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"chain", "binary", "binomial", "4-nomial", "4-ary", "flat"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tree := b.Build(17, 3); tree.Validate() != nil {
			t.Fatalf("%s: invalid tree", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown builder")
	}
}

func TestSingleRankTrees(t *testing.T) {
	for _, b := range Builders() {
		tree := b.Build(1, 0)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s size 1: %v", b.Name, err)
		}
		if !tree.IsLeaf(0) || tree.Depth() != 0 {
			t.Fatalf("%s size 1 should be a bare root", b.Name)
		}
	}
}
