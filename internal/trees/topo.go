package trees

import (
	"fmt"

	"adapt/internal/hwloc"
)

// TopoConfig selects the tree algorithm used at each hardware level of the
// topology-aware tree (paper §3.2.1: "processes within different groups
// can communicate using a different pattern").
type TopoConfig struct {
	InterNode   Builder // over node leaders (NIC lane)
	InterSocket Builder // over socket leaders within a node (QPI lane)
	IntraSocket Builder // over ranks within a socket (shared-memory lane)
}

// ChainConfig is the all-chain configuration OMPI-adapt uses in the
// paper's strong-scaling experiments (§5.2.1).
func ChainConfig() TopoConfig {
	c := Builder{"chain", Chain}
	return TopoConfig{InterNode: c, InterSocket: c, IntraSocket: c}
}

// Topology builds the single-communicator topology-aware tree of §3.2.1:
// ranks are grouped bottom-up (socket, node); each group gets its own
// sub-tree rooted at a leader; the leader "glues" the group into the
// upper level's sub-tree, exactly like P4 glues its socket chain into the
// node-level chain in the paper's Figure 5.
//
// Leaders: the node leader of the root's node is the root itself, so the
// root is the overall tree root; the socket leader of a node leader's
// socket is that node leader; all other leaders are the smallest rank in
// their group. Every rank's children are ordered slowest lane first
// (inter-node, then inter-socket, then intra-socket) so that transfers on
// slow lanes are posted as early as possible and overlap with fast lanes.
func Topology(topo *hwloc.Topology, root int, cfg TopoConfig) *Tree {
	n := topo.Size()
	checkArgs(n, root)
	parent := make([]int, n)
	for r := range parent {
		parent[r] = -1
	}
	children := make([][]int, n)
	glue := func(members []int, b Builder) {
		if len(members) == 0 {
			panic("trees: empty group")
		}
		if len(members) == 1 {
			return
		}
		sub := b.Build(len(members), 0)
		for p := 0; p < len(members); p++ {
			for _, c := range sub.Children[p] {
				child := members[c]
				if parent[child] != -1 {
					panic(fmt.Sprintf("trees: rank %d acquired two parents", child))
				}
				parent[child] = members[p]
				children[members[p]] = append(children[members[p]], child)
			}
		}
	}

	rootPlace := topo.PlaceOf(root)

	// Level 1: inter-node tree over node leaders, root's node first.
	nodeLeader := make([]int, topo.Nodes)
	for node := 0; node < topo.Nodes; node++ {
		if node == rootPlace.Node {
			nodeLeader[node] = root
		} else {
			nodeLeader[node] = topo.RanksOnNode(node)[0]
		}
	}
	leaders := []int{nodeLeader[rootPlace.Node]}
	for node := 0; node < topo.Nodes; node++ {
		if node != rootPlace.Node {
			leaders = append(leaders, nodeLeader[node])
		}
	}
	glue(leaders, cfg.InterNode)

	// Level 2: per node, inter-socket tree over socket leaders, rooted at
	// the node leader (whose socket comes first).
	socketLeader := make([][]int, topo.Nodes)
	for node := 0; node < topo.Nodes; node++ {
		lead := nodeLeader[node]
		leadSocket := topo.PlaceOf(lead).Socket
		socketLeader[node] = make([]int, topo.SocketsPerNode)
		for s := 0; s < topo.SocketsPerNode; s++ {
			if s == leadSocket {
				socketLeader[node][s] = lead
			} else {
				socketLeader[node][s] = topo.RanksOnSocket(node, s)[0]
			}
		}
		members := []int{lead}
		for s := 0; s < topo.SocketsPerNode; s++ {
			if s != leadSocket {
				members = append(members, socketLeader[node][s])
			}
		}
		glue(members, cfg.InterSocket)
	}

	// Level 3: per socket, intra-socket tree rooted at the socket leader.
	for node := 0; node < topo.Nodes; node++ {
		for s := 0; s < topo.SocketsPerNode; s++ {
			lead := socketLeader[node][s]
			members := []int{lead}
			for _, r := range topo.RanksOnSocket(node, s) {
				if r != lead {
					members = append(members, r)
				}
			}
			glue(members, cfg.IntraSocket)
		}
	}

	t := &Tree{Root: root, Parent: parent, Children: children}
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("trees: topology-aware tree invalid: %v", err))
	}
	return t
}
