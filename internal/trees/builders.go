package trees

import "fmt"

// A Builder constructs a tree over `size` ranks rooted at `root`.
type Builder struct {
	Name  string
	Build func(size, root int) *Tree
}

func checkArgs(size, root int) {
	if size <= 0 {
		panic(fmt.Sprintf("trees: non-positive size %d", size))
	}
	if root < 0 || root >= size {
		panic(fmt.Sprintf("trees: root %d out of range [0,%d)", root, size))
	}
}

// buildVirtual assembles a tree from virtual-rank parent/children
// generators. Virtual rank 0 is the root; actual = (virtual+root) mod size.
func buildVirtual(size, root int, vparent func(v int) int, vchildren func(v int) []int) *Tree {
	checkArgs(size, root)
	parent := make([]int, size)
	children := make([][]int, size)
	for v := 0; v < size; v++ {
		r := shift(size, root, v)
		if v == 0 {
			parent[r] = -1
		} else {
			parent[r] = shift(size, root, vparent(v))
		}
		vcs := vchildren(v)
		if len(vcs) > 0 {
			cs := make([]int, len(vcs))
			for i, vc := range vcs {
				cs[i] = shift(size, root, vc)
			}
			children[r] = cs
		}
	}
	return &Tree{Root: root, Parent: parent, Children: children}
}

// Chain builds a pipeline chain root → next → ... Used by ADAPT for every
// topology level in the paper's strong-scaling runs (§5.2.1): the chain's
// pipelined cost (P + ns − 2)(α + βm) is independent of P once ns ≫ P.
func Chain(size, root int) *Tree {
	return buildVirtual(size, root,
		func(v int) int { return v - 1 },
		func(v int) []int {
			if v+1 < size {
				return []int{v + 1}
			}
			return nil
		})
}

// Binary builds a complete binary tree (k-ary with k = 2).
func Binary(size, root int) *Tree { return Kary(2)(size, root) }

// Kary returns a builder for complete k-ary trees: vrank v's children are
// k·v+1 … k·v+k.
func Kary(k int) func(size, root int) *Tree {
	if k < 1 {
		panic(fmt.Sprintf("trees: k-ary radix %d < 1", k))
	}
	return func(size, root int) *Tree {
		return buildVirtual(size, root,
			func(v int) int { return (v - 1) / k },
			func(v int) []int {
				var cs []int
				for i := 1; i <= k; i++ {
					if c := k*v + i; c < size {
						cs = append(cs, c)
					}
				}
				return cs
			})
	}
}

// Binomial builds a binomial tree (k-nomial with k = 2).
func Binomial(size, root int) *Tree { return Knomial(2)(size, root) }

// lowestDigitPow returns k^j where j is the position of v's lowest nonzero
// base-k digit. v must be positive.
func lowestDigitPow(v, k int) int {
	pow := 1
	for (v/pow)%k == 0 {
		pow *= k
	}
	return pow
}

// Knomial returns a builder for k-nomial trees (radix k ≥ 2). The parent
// of vrank v is v with its lowest nonzero base-k digit cleared; children
// v + d·k^j (j below that digit, d ∈ [1,k)) are emitted largest-stride
// first so the biggest subtrees start earliest — the classic ordering that
// minimizes completion time.
func Knomial(k int) func(size, root int) *Tree {
	if k < 2 {
		panic(fmt.Sprintf("trees: k-nomial radix %d < 2", k))
	}
	return func(size, root int) *Tree {
		return buildVirtual(size, root,
			func(v int) int {
				pow := lowestDigitPow(v, k)
				return v - (v/pow)%k*pow
			},
			func(v int) []int {
				// Children strides are k^j strictly below v's lowest
				// nonzero digit; for the root every stride ≤ size applies.
				limit := size
				if v != 0 {
					limit = lowestDigitPow(v, k)
				}
				maxPow := 1
				for maxPow*k <= size {
					maxPow *= k
				}
				var cs []int
				for pow := maxPow; pow >= 1; pow /= k {
					if v != 0 && pow >= limit {
						continue
					}
					for d := 1; d < k; d++ {
						if c := v + d*pow; c < size {
							cs = append(cs, c)
						}
					}
				}
				return cs
			})
	}
}

// Flat builds a star: every non-root rank is a direct child of the root.
func Flat(size, root int) *Tree {
	return buildVirtual(size, root,
		func(v int) int { return 0 },
		func(v int) []int {
			if v != 0 {
				return nil
			}
			cs := make([]int, 0, size-1)
			for c := 1; c < size; c++ {
				cs = append(cs, c)
			}
			return cs
		})
}

// ByName returns the named builder, for CLI flag parsing.
func ByName(name string) (Builder, error) {
	switch name {
	case "chain":
		return Builder{"chain", Chain}, nil
	case "binary":
		return Builder{"binary", Binary}, nil
	case "binomial":
		return Builder{"binomial", Binomial}, nil
	case "4-nomial", "knomial4":
		return Builder{"4-nomial", Knomial(4)}, nil
	case "8-nomial", "knomial8":
		return Builder{"8-nomial", Knomial(8)}, nil
	case "4-ary", "kary4":
		return Builder{"4-ary", Kary(4)}, nil
	case "flat":
		return Builder{"flat", Flat}, nil
	default:
		return Builder{}, fmt.Errorf("trees: unknown builder %q", name)
	}
}

// Builders returns every named builder, for exhaustive tests.
func Builders() []Builder {
	return []Builder{
		{"chain", Chain},
		{"binary", Binary},
		{"binomial", Binomial},
		{"4-nomial", Knomial(4)},
		{"8-nomial", Knomial(8)},
		{"4-ary", Kary(4)},
		{"flat", Flat},
	}
}
