package trees

import (
	"math/rand"
	"reflect"
	"testing"
)

// healedInvariants checks that h spans exactly the live ranks of t as a
// rooted tree with mutually consistent Parent/Children, and that no dead
// rank appears anywhere.
func healedInvariants(t *testing.T, orig, h *Tree, dead []bool) {
	t.Helper()
	n := orig.Size()
	if h.Root != orig.Root {
		t.Fatalf("healed root %d, want %d", h.Root, orig.Root)
	}
	for r := 0; r < n; r++ {
		if dead[r] {
			if h.Parent[r] != -1 || len(h.Children[r]) != 0 {
				t.Fatalf("dead rank %d still wired: parent=%d children=%v", r, h.Parent[r], h.Children[r])
			}
			continue
		}
		for _, ch := range h.Children[r] {
			if dead[ch] {
				t.Fatalf("live rank %d has dead child %d", r, ch)
			}
			if h.Parent[ch] != r {
				t.Fatalf("child %d of %d has parent %d", ch, r, h.Parent[ch])
			}
		}
	}
	// Every live rank reachable from the root exactly once.
	visited := make([]bool, n)
	stack := []int{h.Root}
	count := 0
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[r] {
			t.Fatalf("rank %d visited twice (cycle)", r)
		}
		visited[r] = true
		count++
		stack = append(stack, h.Children[r]...)
	}
	live := 0
	for r := 0; r < n; r++ {
		if !dead[r] {
			live++
			if !visited[r] {
				t.Fatalf("live rank %d unreachable from root", r)
			}
		}
	}
	if count != live {
		t.Fatalf("reached %d ranks, want %d live", count, live)
	}
}

func TestHealSplicesGrandchildrenInPlace(t *testing.T) {
	// Binomial(8, 0): children of 0 are [4 2 1], children of 4 are [6 5],
	// children of 2 are [3], of 6 are [7].
	tr := Binomial(8, 0)
	dead := make([]bool, 8)
	dead[4] = true
	h := tr.Heal(dead)
	healedInvariants(t, tr, h, dead)
	// 4's children [6 5] must replace 4 in the root's child order.
	want := []int{6, 5, 2, 1}
	if !reflect.DeepEqual(h.Children[0], want) {
		t.Fatalf("root children after healing 4: %v, want %v", h.Children[0], want)
	}
}

func TestHealChainOfDeaths(t *testing.T) {
	// Chain 0→1→2→3→4; killing 1 and 2 re-parents 3 to the root directly.
	tr := Chain(5, 0)
	dead := make([]bool, 5)
	dead[1], dead[2] = true, true
	h := tr.Heal(dead)
	healedInvariants(t, tr, h, dead)
	if h.Parent[3] != 0 {
		t.Fatalf("rank 3 re-parented to %d, want 0 (nearest live ancestor)", h.Parent[3])
	}
	if h.Parent[4] != 3 {
		t.Fatalf("rank 4 re-parented to %d, want 3 (unchanged)", h.Parent[4])
	}
}

func TestHealLeafAndNoop(t *testing.T) {
	tr := Binary(7, 1)
	none := make([]bool, 7)
	h := tr.Heal(none)
	if !reflect.DeepEqual(h.Parent, tr.Parent) {
		t.Fatalf("empty death mask changed parents: %v vs %v", h.Parent, tr.Parent)
	}
	// Killing a leaf only removes it.
	dead := make([]bool, 7)
	leaf := -1
	for r := 0; r < 7; r++ {
		if r != tr.Root && tr.IsLeaf(r) {
			leaf = r
			break
		}
	}
	dead[leaf] = true
	h = tr.Heal(dead)
	healedInvariants(t, tr, h, dead)
	for r := 0; r < 7; r++ {
		if r != leaf && !dead[r] && h.Parent[r] != tr.Parent[r] {
			t.Fatalf("killing leaf %d moved rank %d", leaf, r)
		}
	}
}

func TestHealPanics(t *testing.T) {
	tr := Binomial(4, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("dead root", func() { tr.Heal([]bool{false, false, true, false}) })
	mustPanic("short mask", func() { tr.Heal([]bool{false, false}) })
}

func TestHealRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	builders := []func(size, root int) *Tree{Chain, Binary, Binomial, Kary(4), Knomial(3), Flat}
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(30)
		root := rng.Intn(n)
		tr := builders[rng.Intn(len(builders))](n, root)
		dead := make([]bool, n)
		for k := rng.Intn(n); k > 0; k-- {
			r := rng.Intn(n)
			if r != root {
				dead[r] = true
			}
		}
		h := tr.Heal(dead)
		healedInvariants(t, tr, h, dead)
		// Determinism: healing again yields the identical tree.
		h2 := tr.Heal(dead)
		if !reflect.DeepEqual(h.Parent, h2.Parent) || !reflect.DeepEqual(h.Children, h2.Children) {
			t.Fatalf("Heal not deterministic on iter %d", iter)
		}
	}
}
