#!/bin/sh
# Run the kernel-dispatch and segment-pool microbenchmarks plus the
# multi-collective concurrency benchmark, and record the numbers in
# BENCH_kernel.json / BENCH_progress.json so future changes can track
# the perf trajectory. Run from the repo root:
#
#   ./scripts/bench.sh            # writes BENCH_kernel.json, BENCH_progress.json, BENCH_fec.json, BENCH_serve.json
#   ./scripts/bench.sh -count=3   # extra args forwarded to go test
set -eu

cd "$(dirname "$0")/.."
out=BENCH_kernel.json
pout=BENCH_progress.json
raw=$(mktemp)
praw=$(mktemp)
prev=$(mktemp)
trap 'rm -f "$raw" "$praw" "$prev"' EXIT

# Keep the previous kernel numbers for the dispatch-regression gate below.
had_prev=0
if [ -f "$out" ]; then
    cp "$out" "$prev"
    had_prev=1
fi

# No-regression gate: a clean run (no fault plan installed) must leave
# every fault/recovery counter at zero — the chaos transport may cost
# nothing unless explicitly enabled.
echo "bench.sh: checking fault counters stay zero in clean runs"
go test -run 'TestCleanRunFaultCountersZero' -count=1 ./internal/conform >/dev/null || {
    echo "bench.sh: FAIL: clean runs moved fault counters (chaos transport leaked into the fault-free path)" >&2
    exit 1
}

# Same gate for the fail-stop machinery: without crash rules armed, the
# failure detector must record zero suspicions, confirmations, and tree
# repairs — no false positives in clean runs.
echo "bench.sh: checking detector counters stay zero in clean runs"
go test -run 'TestCleanRunDetectorCountersZero' -count=1 ./internal/conform >/dev/null || {
    echo "bench.sh: FAIL: clean runs moved detector counters (failure detector false-positived without crash rules)" >&2
    exit 1
}

# Observer-effect gate: attaching the causal tracer must not change what
# it observes — a traced run's collective output (tables) must be
# byte-identical to an untraced run of the same experiment.
echo "bench.sh: checking traced runs produce byte-identical collective output"
tdir=$(mktemp -d)
go build -o "$tdir/adaptbench" ./cmd/adaptbench
"$tdir/adaptbench" -exp table1 -scale quick >"$tdir/plain.txt" 2>/dev/null
"$tdir/adaptbench" -exp table1 -scale quick -ctrace "$tdir/t.json" >"$tdir/traced.txt" 2>/dev/null
cmp -s "$tdir/plain.txt" "$tdir/traced.txt" || {
    echo "bench.sh: FAIL: -ctrace changed the experiment output (tracer observer effect)" >&2
    rm -rf "$tdir"
    exit 1
}
rm -rf "$tdir"

# TCP transport gate: a clean multi-process run over loopback must
# leave every network-fault counter at zero (no dial retries, no peer
# teardowns) and verify byte-identical against the simmpi golden.
# adaptrun itself exits non-zero if a clean run moved the counters; the
# grep double-checks the printed perf line.
echo "bench.sh: checking nettransport clean runs leave net fault counters zero"
ndir=$(mktemp -d)
go build -o "$ndir/adaptrun" ./cmd/adaptrun
"$ndir/adaptrun" -n 4 -coll bcast,allreduce -perf >"$ndir/net.txt" 2>&1 || {
    echo "bench.sh: FAIL: clean adaptrun run failed (see below)" >&2
    cat "$ndir/net.txt" >&2
    rm -rf "$ndir"
    exit 1
}
grep -q 'trouble 0' "$ndir/net.txt" || {
    echo "bench.sh: FAIL: clean nettransport run moved net fault counters" >&2
    cat "$ndir/net.txt" >&2
    rm -rf "$ndir"
    exit 1
}
rm -rf "$ndir"

go test -run '^$' \
    -bench 'BenchmarkKernelDispatch$|BenchmarkKernelSelfSchedule$|BenchmarkSegmentPool$|BenchmarkSegmentMake$' \
    -benchmem "$@" ./internal/sim ./internal/comm | tee "$raw"

awk '
BEGIN { n = 0 }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    printf "%s  {\"name\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}",
        (n ? ",\n" : ""), name, $2, $3, $5, $7
    n++
}
END {
    if (!n) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
}
' "$raw" | { printf '[\n'; cat; printf ']\n'; } >"$out"

echo "wrote $out"

# Kernel-scaling ladder: proc- vs flat-mode collectives across a rank
# ladder (quick rungs here; `make scale` runs the full million-rank
# ladder). adaptbench enforces the RSS and flat-beats-proc gates and
# merges its rows into BENCH_kernel.json next to the microbench rows.
./scripts/scale.sh "$out" || {
    echo "bench.sh: FAIL: kernel-scaling ladder failed its gates" >&2
    exit 1
}

# Dispatch-regression gate: the kernel dispatch microbenchmark must not
# lose more than 15% of its ops/s against the previous recorded run
# (ns/op may grow at most 1.18x).
if [ "$had_prev" = 1 ]; then
    awk '
    # Handles both row formats: one object per line (the fresh awk
    # output above) and one key per line (after the scale-row merge
    # re-indents the array). Keys are alphabetical, so "name" is always
    # seen before the object'\''s "ns_op".
    {
        if (match($0, /"name": *"[^"]*"/)) {
            nm = substr($0, RSTART, RLENGTH)
            sub(/^"name": *"/, "", nm)
            sub(/"$/, "", nm)
        }
        if (nm == "BenchmarkKernelDispatch" && match($0, /"ns_op": *[0-9.eE+-]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/^"ns_op": */, "", v)
            if (NR == FNR) old = v + 0; else new = v + 0
        }
    }
    END {
        if (old == 0 || new == 0) exit 0   # nothing comparable recorded
        if (new > old * 1.18) {
            printf "bench.sh: FAIL: kernel dispatch regressed %.2f -> %.2f ns/op (>15%% ops/s drop)\n", old, new > "/dev/stderr"
            exit 1
        }
        printf "bench.sh: kernel dispatch %.2f -> %.2f ns/op (regression gate ok)\n", old, new
    }
    ' "$prev" "$out" || exit 1
fi

# Shared progress-engine gate: one rank-0 scheduler driving N
# communicators × M concurrent collectives. Throughput (ops/s) and tail
# latency (p99-ns) land in BENCH_progress.json; the parser is generic
# over Go's (value, unit) metric pairs so added ReportMetric columns
# flow through without script changes.
go test -run '^$' -bench 'BenchmarkMultiCollective' "$@" \
    ./internal/progress | tee "$praw"

awk '
BEGIN { n = 0 }
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    printf "%s  {\"name\": \"%s\", \"iters\": %s", (n ? ",\n" : ""), name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
    n++
}
END {
    if (!n) { print "bench.sh: no progress benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print ""
}
' "$praw" | { printf '[\n'; cat; printf ']\n'; } >"$pout"

echo "wrote $pout"

# FEC gate: the loss-sweep exhibit prices ARQ-only against erasure-coded
# segment streams across a loss ladder and writes p50/p99 per rung to
# BENCH_fec.json. adaptbench itself exits non-zero unless the
# zero-retransmit gate holds: every FEC run whose groups all repaired
# must retransmit nothing, and at least one run must repair real losses
# that way.
echo "bench.sh: running the FEC loss sweep (zero-retransmit gate)"
fdir=$(mktemp -d)
go build -o "$fdir/adaptbench" ./cmd/adaptbench
"$fdir/adaptbench" -fec-json BENCH_fec.json -scale quick || {
    echo "bench.sh: FAIL: FEC loss sweep failed its zero-retransmit gate" >&2
    rm -rf "$fdir"
    exit 1
}
rm -rf "$fdir"
echo "wrote BENCH_fec.json"

# Serving-layer gate: a real adaptd process serves a multi-point session
# load (adaptbench -serve verifies every result), writes throughput and
# p50/p99 latency to BENCH_serve.json, and the daemon's drain summary
# must report "trouble 0" — no overload rejections, rank failures, or
# rank deaths on a clean unsaturated run.
echo "bench.sh: benchmarking the serving layer (adaptd + session load)"
sdir=$(mktemp -d)
go build -o "$sdir/adaptd" ./cmd/adaptd
go build -o "$sdir/adaptbench" ./cmd/adaptbench
"$sdir/adaptd" -fuse 200us >"$sdir/adaptd.txt" 2>&1 &
adaptd_pid=$!
addr=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
    addr=$(sed -n 's/^adaptd: listening on //p' "$sdir/adaptd.txt")
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || {
    echo "bench.sh: FAIL: adaptd never printed its listen address" >&2
    kill "$adaptd_pid" 2>/dev/null || true
    cat "$sdir/adaptd.txt" >&2
    rm -rf "$sdir"
    exit 1
}
"$sdir/adaptbench" -serve "$addr" -serve-points '1x64,4x64,16x32' -o BENCH_serve.json >/dev/null || {
    echo "bench.sh: FAIL: adaptbench -serve run failed (result mismatch or session error)" >&2
    kill "$adaptd_pid" 2>/dev/null || true
    cat "$sdir/adaptd.txt" >&2
    rm -rf "$sdir"
    exit 1
}
kill -INT "$adaptd_pid"
wait "$adaptd_pid" || {
    echo "bench.sh: FAIL: adaptd exited non-zero at drain" >&2
    cat "$sdir/adaptd.txt" >&2
    rm -rf "$sdir"
    exit 1
}
grep -q 'trouble 0' "$sdir/adaptd.txt" || {
    echo "bench.sh: FAIL: clean serving run moved serve/net trouble counters" >&2
    cat "$sdir/adaptd.txt" >&2
    rm -rf "$sdir"
    exit 1
}
rm -rf "$sdir"
echo "wrote BENCH_serve.json"

# Observability gate: a real adaptd with the telemetry plane attached,
# driven by adaptbench -serve (folding the daemon's per-point perf
# windows into the rows), scraped mid-run by adaptctl -check — which
# fails unless the Prometheus exposition parses, the request-latency
# quantiles are non-empty, /healthz is ready, and the trouble counters
# are zero. Evidence lands in BENCH_obs.json; the daemon's own drain
# summary must still report trouble 0.
echo "bench.sh: checking the live telemetry plane (adaptd -admin + adaptctl)"
odir=$(mktemp -d)
go build -o "$odir/adaptd" ./cmd/adaptd
go build -o "$odir/adaptbench" ./cmd/adaptbench
go build -o "$odir/adaptctl" ./cmd/adaptctl
"$odir/adaptd" -fuse 200us -admin 127.0.0.1:0 >"$odir/adaptd.txt" 2>&1 &
adaptd_pid=$!
addr=""
admin=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
    addr=$(sed -n 's/^adaptd: listening on //p' "$odir/adaptd.txt")
    admin=$(sed -n 's/^adaptd: admin on //p' "$odir/adaptd.txt")
    [ -n "$addr" ] && [ -n "$admin" ] && break
    sleep 0.2
done
if [ -z "$addr" ] || [ -z "$admin" ]; then
    echo "bench.sh: FAIL: adaptd never printed its listen/admin addresses" >&2
    kill "$adaptd_pid" 2>/dev/null || true
    cat "$odir/adaptd.txt" >&2
    rm -rf "$odir"
    exit 1
fi
"$odir/adaptbench" -serve "$addr" -serve-admin "$admin" -serve-points '2x128,4x128' >/dev/null &
bench_pid=$!
"$odir/adaptctl" -addr "$admin" -check -out BENCH_obs.json -timeout 30s || {
    echo "bench.sh: FAIL: adaptctl -check rejected the telemetry plane (see BENCH_obs.json)" >&2
    kill "$bench_pid" "$adaptd_pid" 2>/dev/null || true
    cat "$odir/adaptd.txt" >&2
    rm -rf "$odir"
    exit 1
}
wait "$bench_pid" || {
    echo "bench.sh: FAIL: adaptbench -serve load failed under the obs gate" >&2
    kill "$adaptd_pid" 2>/dev/null || true
    cat "$odir/adaptd.txt" >&2
    rm -rf "$odir"
    exit 1
}
kill -INT "$adaptd_pid"
wait "$adaptd_pid" || {
    echo "bench.sh: FAIL: adaptd exited non-zero at drain under the obs gate" >&2
    cat "$odir/adaptd.txt" >&2
    rm -rf "$odir"
    exit 1
}
grep -q 'trouble 0' "$odir/adaptd.txt" || {
    echo "bench.sh: FAIL: telemetry-enabled serving run moved trouble counters" >&2
    cat "$odir/adaptd.txt" >&2
    rm -rf "$odir"
    exit 1
}
rm -rf "$odir"
echo "wrote BENCH_obs.json"
