#!/bin/sh
# Kernel-scaling ladder: run adaptbench -ranks (proc- vs flat-mode
# collectives across a rank ladder) and merge the rows into
# BENCH_kernel.json. adaptbench itself enforces the scaling gates:
# every ≥100k broadcast rung must fit under 8 GB peak RSS, and flat
# mode must beat proc mode on both events/s and RSS wherever both ran.
#
#   ./scripts/scale.sh                     # quick ladder (1k,10k bcast)
#   SCALE_LADDER=1k,10k,100k,1m \
#   SCALE_COLLS=bcast,reduce,allreduce \
#   ./scripts/scale.sh                     # the full million-rank ladder (make scale)
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_kernel.json}
ladder=${SCALE_LADDER:-1k,10k}
colls=${SCALE_COLLS:-bcast}

tdir=$(mktemp -d)
trap 'rm -rf "$tdir"' EXIT
go build -o "$tdir/adaptbench" ./cmd/adaptbench
"$tdir/adaptbench" -ranks "$ladder" -ranks-coll "$colls" -ranks-json "$out"
echo "scale.sh: merged ladder rows into $out"
