// Command adaptsim runs a single simulated collective with free-form
// parameters — platform, library proxy, operation, message size, noise —
// and prints the IMB-style average time. It is the exploratory companion
// to adaptbench's fixed exhibits.
//
// Examples:
//
//	adaptsim -platform cori -nodes 32 -lib ompi-adapt -op bcast -size 4194304
//	adaptsim -platform psg -nodes 8 -lib ompi-adapt -op reduce -size 33554432
//	adaptsim -platform stampede2 -lib mvapich -op bcast -size 4194304 -noise 10 -fraction 0.02
package main

import (
	"flag"
	"fmt"
	"os"

	"adapt/internal/comm"
	"adapt/internal/imb"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trace"
)

func main() {
	platform := flag.String("platform", "cori", "cori, stampede2 or psg")
	nodes := flag.Int("nodes", 8, "number of nodes")
	libName := flag.String("lib", "ompi-adapt", "library proxy (ompi-adapt, ompi-default, ompi-default-topo, intel, cray, mvapich)")
	opName := flag.String("op", "bcast", "bcast or reduce")
	size := flag.Int("size", 4<<20, "message size in bytes")
	noisePct := flag.Int("noise", 0, "noise level in percent (paper's 5/10 laws)")
	fraction := flag.Float64("fraction", 0.02, "fraction of ranks carrying the noise injector")
	reps := flag.Int("reps", 0, "repetitions (0 = size-based default)")
	seed := flag.Int64("seed", 0, "noise seed")
	profile := flag.String("profile", "", "JSON platform profile file (overrides -platform/-nodes)")
	stats := flag.Bool("stats", false, "report per-repetition min/avg/max (barrier-fenced)")
	util := flag.Bool("util", false, "report the busiest simulated facilities")
	traceRanks := flag.Int("trace", 0, "trace one operation and print a timeline for the first N ranks")
	flag.Parse()

	var p *netmodel.Platform
	var err error
	if *profile != "" {
		f, ferr := os.Open(*profile)
		fail(ferr)
		p, err = netmodel.LoadPlatform(f)
		f.Close()
	} else {
		p, err = netmodel.ByName(*platform, *nodes)
	}
	fail(err)
	lib, err := libmodel.ByName(*libName, p)
	fail(err)
	var op imb.Op
	switch *opName {
	case "bcast":
		op = imb.Bcast
	case "reduce":
		op = imb.Reduce
	default:
		fail(fmt.Errorf("unknown op %q", *opName))
	}
	spec := noise.Percent(*noisePct)
	spec.Fraction = *fraction
	spec.Seed = *seed

	cfg := imb.Config{
		Platform: p, Noise: spec, Library: lib, Op: op, Size: *size, Reps: *reps,
	}
	if *stats {
		st := imb.MeasureStats(cfg)
		fmt.Printf("%s %s %s on %s (%d ranks), noise=%s: %s\n",
			lib.Name, *opName, sizeStr(*size), p.Name, p.Topo.Size(), spec, st)
	} else {
		avg := imb.Measure(cfg)
		fmt.Printf("%s %s %s on %s (%d ranks), noise=%s: avg %v per op\n",
			lib.Name, *opName, sizeStr(*size), p.Name, p.Topo.Size(), spec, avg)
	}
	if *util {
		reportUtilization(p, spec, lib, op, *size)
	}
	if *traceRanks > 0 {
		reportTrace(p, spec, lib, op, *size, *traceRanks)
	}
}

// reportTrace reruns a single operation with event tracing and prints a
// summary plus per-rank activity strips.
func reportTrace(p *netmodel.Platform, spec noise.Spec, lib libmodel.Library, op imb.Op, size, nranks int) {
	k := sim.New()
	w := simmpi.NewWorld(k, p, spec)
	w.Trace = &trace.Buffer{Cap: 1 << 20}
	w.Spawn(func(c *simmpi.Comm) {
		msg := comm.Sized(size)
		if op == imb.Bcast {
			lib.Bcast(c, 0, msg, 0)
		} else {
			lib.Reduce(c, 0, msg, 0)
		}
	})
	k.MustRun()
	w.Trace.Summarize().Fprint(os.Stdout)
	if nranks > p.Topo.Size() {
		nranks = p.Topo.Size()
	}
	ranks := make([]int, nranks)
	for i := range ranks {
		ranks[i] = i
	}
	fmt.Println("timeline (S send-done, R recv-done, C compute, · idle):")
	w.Trace.Timeline(os.Stdout, ranks, 72)
}

// reportUtilization reruns a single operation with facility accounting.
func reportUtilization(p *netmodel.Platform, spec noise.Spec, lib libmodel.Library, op imb.Op, size int) {
	k := sim.New()
	w := simmpi.NewWorld(k, p, spec)
	w.Spawn(func(c *simmpi.Comm) {
		msg := comm.Sized(size)
		if op == imb.Bcast {
			lib.Bcast(c, 0, msg, 0)
		} else {
			lib.Reduce(c, 0, msg, 0)
		}
	})
	end := k.MustRun()
	w.Net.FprintUtilization(os.Stdout, end, 12)
}

func sizeStr(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptsim:", err)
		os.Exit(1)
	}
}
