// Command adaptd is the collective-as-a-service daemon: a persistent
// server that executes collective requests from many concurrent client
// sessions on cached backend worlds (internal/serve).
//
// Usage:
//
//	adaptd                          # listen on 127.0.0.1:0 (port printed)
//	adaptd -listen 127.0.0.1:7077   # fixed address
//	adaptd -backend net -fuse 200us # TCP-loopback worlds, 200µs fuse window
//	adaptd -chaos 'seed=11; all: drop=0.05' -perf
//	adaptd -crash 2:0 -crash-group churn -backend net
//	adaptd -admin 127.0.0.1:7078     # live telemetry plane (see adaptctl)
//
// The daemon prints exactly one "adaptd: listening on ADDR" line once
// it accepts connections (scripts parse it), then serves until SIGINT
// or SIGTERM, drains live sessions, and prints a final counters summary
// whose "trouble N" field is the clean-run gate: overload rejections,
// rank failures, and rank deaths all zero on a healthy run.
//
// -admin enables the telemetry plane and exposes /metrics (Prometheus
// text), /statusz (JSON: sessions, backends with generations, request
// quantiles, per-link FEC health, perf counters with per-window
// deltas), /healthz (503 once draining), and /debug/pprof. One
// "adaptd: admin on ADDR" line is printed for scripts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adapt/internal/faults"
	"adapt/internal/metrics"
	"adapt/internal/perf"
	"adapt/internal/serve"
)

func main() {
	os.Exit(run())
}

type crashFlags []faults.Crash

func (c *crashFlags) String() string {
	parts := make([]string, len(*c))
	for i, cr := range *c {
		parts[i] = fmt.Sprintf("%d:%d", cr.Rank, cr.AfterSends)
	}
	return strings.Join(parts, ",")
}

func (c *crashFlags) Set(v string) error {
	rank, after, ok := strings.Cut(v, ":")
	r, err := strconv.Atoi(rank)
	if err != nil || r < 0 {
		return fmt.Errorf("bad -crash rank %q (want R or R:K)", v)
	}
	k := 0
	if ok {
		if k, err = strconv.Atoi(after); err != nil || k < 0 {
			return fmt.Errorf("bad -crash after-sends %q (want R or R:K)", v)
		}
	}
	*c = append(*c, faults.Crash{Rank: r, AfterSends: k})
	return nil
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	backend := flag.String("backend", "runtime", "backend substrate: runtime or net")
	fuse := flag.Duration("fuse", 0, "fuse window for same-shape allreduces (0 disables fusing)")
	fuseMax := flag.Int("fuse-max", 16, "max requests per fused batch")
	queue := flag.Int("queue", 64, "per-backend admission queue depth")
	sessionPending := flag.Int("session-pending", 32, "per-session in-flight request cap")
	maxConcurrent := flag.Int("max-concurrent", 8, "concurrently scheduled collectives per backend rank")
	maxSessions := flag.Int("max-sessions", 4096, "concurrent session cap")
	maxWorld := flag.Int("max-world", 64, "largest backend world a session may request")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	chaos := flag.String("chaos", "", "fault plan for runtime backends (e.g. 'seed=11; all: drop=0.05')")
	crashGroup := flag.String("crash-group", "", "group whose net backends arm the -crash rules")
	perfStats := flag.Bool("perf", false, "print full perf counters to stderr at shutdown")
	adminAddr := flag.String("admin", "", "admin/telemetry HTTP address (empty disables the plane)")
	var crashes crashFlags
	flag.Var(&crashes, "crash", "fail-stop crash rule R:K for -crash-group worlds (repeatable)")
	flag.Parse()

	cfg := serve.Config{
		Addr:           *listen,
		Backend:        *backend,
		FuseWindow:     *fuse,
		FuseMaxReqs:    *fuseMax,
		QueueDepth:     *queue,
		SessionPending: *sessionPending,
		MaxConcurrent:  *maxConcurrent,
		MaxSessions:    *maxSessions,
		MaxWorld:       *maxWorld,
		DrainTimeout:   *drain,
		Crashes:        crashes,
		CrashGroup:     *crashGroup,
	}
	if *chaos != "" {
		plan, err := faults.ParsePlan(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptd: %v\n", err)
			return 2
		}
		cfg.Chaos = &plan
		cfg.Recovery = faults.DefaultRecovery()
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptd: %v\n", err)
		return 1
	}
	fmt.Printf("adaptd: listening on %s\n", srv.Addr())
	if *adminAddr != "" {
		admin, err := metrics.ServeAdmin(*adminAddr, metrics.AdminOpts{
			Status:  func() any { return srv.StatusReport() },
			Healthy: func() bool { return !srv.Draining() },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptd: %v\n", err)
			srv.Close()
			return 1
		}
		// Left open through drain on purpose: /healthz turning 503 and the
		// drain histograms filling are exactly what a watcher wants to see.
		defer admin.Close()
		fmt.Printf("adaptd: admin on %s\n", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("adaptd: draining")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "adaptd: close: %v\n", err)
		return 1
	}

	st := srv.Stats()
	snap := perf.Read()
	fmt.Printf("adaptd: served %d sessions (%d drained), %d requests, %d responses, %d proxy ops, %d backends; trouble %d (%d overloads, %d rank fails, %d rank deaths, %d net)\n",
		st.Sessions, st.SessionsClosed, st.Requests, st.Responses, st.ProxyOps, st.Backends,
		snap.ServeTrouble()+snap.NetTrouble(),
		snap.ServeOverloads, snap.ServeRankFails, snap.ServeRankDeaths, snap.NetTrouble())
	if *perfStats {
		snap.Fprint(os.Stderr)
	}
	return 0
}
