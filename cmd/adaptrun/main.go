// Command adaptrun launches an N-process collective run over TCP
// loopback: it spawns N worker copies of itself (one OS process per
// rank), distributes the rendezvous address map through a coordinator
// socket, runs the requested collectives from the conformance registry
// on the nettransport substrate, and gathers per-rank results. With
// -verify each final buffer is checked byte-for-byte against the
// simulator's golden run of the same registry case.
//
// Examples:
//
//	adaptrun -n 8                           # bcast, reduce, allreduce on 8 processes
//	adaptrun -n 4 -coll core/alltoall       # any registry case by full name
//	adaptrun -n 4 -coll bcast -crash 2:1    # kill rank 2 mid-run (FT path)
//	adaptrun -n 4 -perf -trace /tmp/tr      # counters + per-worker Perfetto spans
//
// A crash run arms the fail-stop path: the named rank's process calls
// os.Exit at its crash point, every survivor detects the vanished peer
// through the lease-based failure detector, and the launcher reports
// either healed completion (non-root victim) or each survivor's
// structured *faults.RankFailedError (dead root) — never a hang.
package main

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"adapt/internal/conform"
	"adapt/internal/core"
	"adapt/internal/faults"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/nettransport"
	"adapt/internal/perf"
	"adapt/internal/trace"
)

// collAliases maps short names to conformance-registry case names; any
// full registry name is also accepted verbatim.
var collAliases = map[string]string{
	"bcast":     "core/bcast-binomial",
	"reduce":    "core/reduce",
	"allreduce": "core/allreduce",
	"allgather": "core/allgather",
	"alltoall":  "core/alltoall",
	"gather":    "core/gather",
	"scatter":   "core/scatter",
	"barrier":   "coll/barrier",
}

// ftAliases maps short names to fail-stop registry cases for -crash runs.
var ftAliases = map[string]string{
	"bcast":  "ft/bcast-binomial",
	"reduce": "ft/reduce-binomial",
}

// workerReport is one rank's gob-encoded result payload, shipped back on
// the control connection.
type workerReport struct {
	Rank    int
	Results []collResult
	// Net-path counters for the launcher's aggregate line; Trouble must
	// stay zero on a clean loopback run (scripts/bench.sh gates on it).
	FramesOut, BytesOut, FramesIn, BytesIn, Trouble uint64
}

// collResult is one collective's outcome on one rank.
type collResult struct {
	Coll       string
	Data       []byte // final buffer (nil for size-only results)
	Survivors  []bool // FT runs: the rank's reported survivor mask
	Err        string // structured error text ("" on success)
	RankFailed bool   // Err unwraps to *faults.RankFailedError
}

func main() {
	if os.Getenv("ADAPT_NET_WORKER") != "" {
		os.Exit(workerMain())
	}
	os.Exit(launcherMain())
}

// ---- launcher ----

func launcherMain() int {
	n := flag.Int("n", 4, "number of worker processes (ranks)")
	colls := flag.String("coll", "bcast,reduce,allreduce", "comma-separated collectives (aliases or registry case names)")
	size := flag.Int("size", 0, "payload bytes (0 = 128×ranks; must divide by 8×ranks)")
	seg := flag.Int("seg", 0, "segment size in bytes (0 = library default)")
	crash := flag.String("crash", "", "fail-stop rule RANK:AFTERSENDS, e.g. 2:1 (switches to FT collectives)")
	timeout := flag.Duration("timeout", 60*time.Second, "bound on rendezvous and gather")
	verify := flag.Bool("verify", true, "check buffers against the simulator's golden run")
	perfStats := flag.Bool("perf", false, "print aggregate socket counters")
	traceDir := flag.String("trace", "", "directory for per-worker Perfetto trace JSON")
	flag.Parse()

	if *n < 2 {
		fmt.Fprintln(os.Stderr, "adaptrun: -n must be at least 2")
		return 2
	}
	if *size == 0 {
		*size = 128 * *n
	}
	if *size%(8**n) != 0 {
		fmt.Fprintf(os.Stderr, "adaptrun: -size %d must be a multiple of 8×%d ranks\n", *size, *n)
		return 2
	}
	crashPlan, err := parseCrash(*crash, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: %v\n", err)
		return 2
	}
	names, err := resolveColls(*colls, crashPlan != nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: %v\n", err)
		return 2
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "adaptrun: %v\n", err)
			return 1
		}
	}

	co, err := nettransport.NewCoordinator(*n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: coordinator: %v\n", err)
		return 1
	}
	defer co.Close()

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: %v\n", err)
		return 1
	}
	procs := make([]*exec.Cmd, *n)
	for r := 0; r < *n; r++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"ADAPT_NET_WORKER=1",
			fmt.Sprintf("ADAPT_NET_RANK=%d", r),
			fmt.Sprintf("ADAPT_NET_N=%d", *n),
			"ADAPT_NET_COORD="+co.Addr(),
			"ADAPT_NET_COLLS="+strings.Join(names, ","),
			fmt.Sprintf("ADAPT_NET_SIZE=%d", *size),
			fmt.Sprintf("ADAPT_NET_SEG=%d", *seg),
			"ADAPT_NET_CRASH="+*crash,
			"ADAPT_NET_TRACE="+*traceDir,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "adaptrun: spawn rank %d: %v\n", r, err)
			return 1
		}
		procs[r] = cmd
	}
	// Reap every worker on the way out so a failed run leaves no orphans.
	defer func() {
		for _, p := range procs {
			if p.ProcessState == nil {
				p.Process.Kill()
			}
			p.Wait()
		}
	}()

	if err := co.Rendezvous(nil, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: %v\n", err)
		return 1
	}
	results := co.Gather(*timeout)

	reports := make([]*workerReport, *n)
	for _, res := range results {
		if res.Lost {
			continue
		}
		var rep workerReport
		if err := gob.NewDecoder(bytes.NewReader(res.Payload)).Decode(&rep); err != nil {
			fmt.Fprintf(os.Stderr, "adaptrun: rank %d report: %v\n", res.Rank, err)
			return 1
		}
		reports[res.Rank] = &rep
	}
	return summarize(*n, *size, *seg, names, crashPlan, results, reports, *verify, *perfStats)
}

// summarize validates the gathered reports and prints the outcome.
// Returns the process exit code.
func summarize(n, size, seg int, names []string, crashPlan *faults.Crash,
	results []nettransport.WorkerResult, reports []*workerReport, verify, perfStats bool) int {
	code := 0
	deadRank := -1
	if crashPlan != nil {
		deadRank = crashPlan.Rank
	}
	for r := 0; r < n; r++ {
		if reports[r] != nil {
			continue
		}
		if r == deadRank {
			fmt.Printf("rank %d: lost (planned crash) — %s\n", r, results[r].Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "adaptrun: rank %d lost unexpectedly: %s\n", r, results[r].Err)
		code = 1
	}

	var goldens map[string][][]byte
	if verify && crashPlan == nil {
		goldens = computeGoldens(n, size, seg, names)
	}
	for i, name := range names {
		ok := true
		for r := 0; r < n; r++ {
			rep := reports[r]
			if rep == nil {
				continue
			}
			cr := rep.Results[i]
			if cr.Err != "" {
				kind := "error"
				if cr.RankFailed {
					kind = "rank-failed"
				}
				fmt.Printf("%-24s rank %d: %s: %s\n", name, r, kind, cr.Err)
				// A dead root makes RankFailedError the *correct* outcome;
				// anything unstructured is a failure.
				if !cr.RankFailed {
					code = 1
				}
				ok = false
				continue
			}
			if goldens != nil && !bytes.Equal(goldens[name][r], cr.Data) {
				fmt.Printf("%-24s rank %d: DIVERGES from simulator golden (%d vs %d bytes)\n",
					name, r, len(goldens[name][r]), len(cr.Data))
				code = 1
				ok = false
			}
			if crashPlan != nil && cr.Survivors != nil && deadRank >= 0 && cr.Survivors[deadRank] {
				fmt.Printf("%-24s rank %d: survivor mask still counts dead rank %d\n", name, r, deadRank)
				code = 1
				ok = false
			}
		}
		switch {
		case ok && goldens != nil:
			fmt.Printf("%-24s ok (%d ranks, %dB, verified against simmpi golden)\n", name, n, size)
		case ok:
			fmt.Printf("%-24s ok (%d ranks, %dB)\n", name, n, size)
		}
	}

	var framesOut, bytesOut, framesIn, bytesIn, trouble uint64
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		framesOut += rep.FramesOut
		bytesOut += rep.BytesOut
		framesIn += rep.FramesIn
		bytesIn += rep.BytesIn
		trouble += rep.Trouble
	}
	if perfStats {
		fmt.Printf("net: frames out %d (%d B), frames in %d (%d B), trouble %d\n",
			framesOut, bytesOut, framesIn, bytesIn, trouble)
	}
	if crashPlan == nil && trouble != 0 {
		fmt.Fprintf(os.Stderr, "adaptrun: clean run moved fault counters (trouble=%d)\n", trouble)
		code = 1
	}
	return code
}

// computeGoldens runs each case on the simulator — the specification the
// socket run must reproduce byte-for-byte.
func computeGoldens(n, size, seg int, names []string) map[string][][]byte {
	topo := hwloc.New(n, 1, 1)
	p := netmodel.Cori(1).WithTopo(topo)
	out := make(map[string][][]byte, len(names))
	for i, name := range names {
		cs, ok := findCase(topo, size, name)
		if !ok {
			continue
		}
		opt := runOptions(seg, i)
		g := conform.RunCase(p, cs, opt, nil, faults.Recovery{})
		if g.Err != nil {
			fmt.Fprintf(os.Stderr, "adaptrun: golden %s: %v\n", name, g.Err)
			os.Exit(1)
		}
		out[name] = g.Out
	}
	return out
}

// ---- worker ----

func workerMain() int {
	rank := envInt("ADAPT_NET_RANK")
	n := envInt("ADAPT_NET_N")
	size := envInt("ADAPT_NET_SIZE")
	seg := envInt("ADAPT_NET_SEG")
	names := strings.Split(os.Getenv("ADAPT_NET_COLLS"), ",")
	crashPlan, err := parseCrash(os.Getenv("ADAPT_NET_CRASH"), n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: %v\n", rank, err)
		return 1
	}

	opts := []nettransport.Option{
		// A worker that hits its crash point dies like a real process: no
		// handshakes, no deferred cleanup, just exit.
		nettransport.WithCrashExit(func() { os.Exit(3) }),
	}
	var tb *trace.Buffer
	if dir := os.Getenv("ADAPT_NET_TRACE"); dir != "" {
		tb = &trace.Buffer{}
		opts = append(opts, nettransport.WithTrace(tb))
		defer writeWorkerTrace(dir, rank, tb)
	}
	if crashPlan != nil {
		opts = append(opts, nettransport.WithCrashesArmed())
		if crashPlan.Rank == rank {
			opts = append(opts, nettransport.WithCrashes([]faults.Crash{*crashPlan}))
		}
	}

	c, cc, _, err := nettransport.JoinCluster(os.Getenv("ADAPT_NET_COORD"), rank, n, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: %v\n", rank, err)
		return 1
	}
	defer c.Close()

	topo := hwloc.New(n, 1, 1)
	rep := workerReport{Rank: rank}
	perfBase := perf.Read()
	for i, name := range names {
		opt := runOptions(seg, i)
		cr := collResult{Coll: name}
		if crashPlan != nil {
			cs, ok := findCrashCase(n, size, name)
			if !ok {
				fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: no FT case %q\n", rank, name)
				return 1
			}
			res := cs.Run(c, cs.In(rank), opt)
			if res.Err != nil {
				cr.Err = res.Err.Error()
				var rf *faults.RankFailedError
				cr.RankFailed = errors.As(res.Err, &rf)
			} else {
				cr.Survivors = res.Survivors
				if res.Msg.Data != nil {
					cr.Data = append([]byte(nil), res.Msg.Data...)
				}
			}
		} else {
			cs, ok := findCase(topo, size, name)
			if !ok {
				fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: unknown case %q\n", rank, name)
				return 1
			}
			res := cs.Run(c, cs.In(rank), opt)
			if res.Data != nil {
				cr.Data = append([]byte(nil), res.Data...)
			}
		}
		rep.Results = append(rep.Results, cr)
	}
	snap := perf.Read()
	rep.FramesOut = snap.NetFramesOut - perfBase.NetFramesOut
	rep.BytesOut = snap.NetBytesOut - perfBase.NetBytesOut
	rep.FramesIn = snap.NetFramesIn - perfBase.NetFramesIn
	rep.BytesIn = snap.NetBytesIn - perfBase.NetBytesIn
	rep.Trouble = snap.NetTrouble() - perfBase.NetTrouble()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: encode report: %v\n", rank, err)
		return 1
	}
	if err := cc.Report(buf.Bytes()); err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: report: %v\n", rank, err)
		return 1
	}
	cc.Close()
	return 0
}

// writeWorkerTrace exports the worker's causal spans (wall-clock offsets
// from endpoint creation) as Perfetto-loadable Chrome JSON.
func writeWorkerTrace(dir string, rank int, tb *trace.Buffer) {
	path := filepath.Join(dir, fmt.Sprintf("rank%d.json", rank))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: trace: %v\n", rank, err)
		return
	}
	defer f.Close()
	run := tb.Snapshot(fmt.Sprintf("adaptrun-rank%d", rank))
	if err := trace.WriteChrome(f, []trace.Run{run}); err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun[worker %d]: trace: %v\n", rank, err)
	}
}

// ---- shared helpers ----

// runOptions builds the per-collective options; Seq advances per case so
// back-to-back collectives never share tags.
func runOptions(seg, idx int) core.Options {
	opt := core.DefaultOptions()
	if seg > 0 {
		opt.SegSize = seg
	}
	opt.Seq = idx + 1
	return opt
}

// resolveColls expands aliases and validates the requested collectives.
func resolveColls(spec string, crash bool) ([]string, error) {
	var names []string
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if crash {
			if ft, ok := ftAliases[name]; ok {
				name = ft
			}
			if !strings.HasPrefix(name, "ft/") {
				return nil, fmt.Errorf("collective %q has no fail-stop variant (crash runs support: bcast, reduce)", name)
			}
		} else if full, ok := collAliases[name]; ok {
			name = full
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no collectives requested")
	}
	return names, nil
}

// findCase looks a case name up in the conformance registry.
func findCase(topo *hwloc.Topology, size int, name string) (conform.Case, bool) {
	for _, cs := range conform.Cases(topo, size) {
		if cs.Name == name {
			return cs, true
		}
	}
	return conform.Case{}, false
}

// findCrashCase looks a fail-stop case up in the crash registry.
func findCrashCase(n, size int, name string) (conform.CrashCase, bool) {
	for _, cs := range conform.CrashCases(n, size) {
		if cs.Name == name {
			return cs, true
		}
	}
	return conform.CrashCase{}, false
}

// parseCrash parses "RANK:AFTERSENDS" ("" = no crash).
func parseCrash(spec string, n int) (*faults.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("crash spec %q: want RANK:AFTERSENDS", spec)
	}
	rank, err1 := strconv.Atoi(parts[0])
	after, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || rank < 0 || rank >= n || after < 0 {
		return nil, fmt.Errorf("crash spec %q: want RANK:AFTERSENDS with 0 <= RANK < %d", spec, n)
	}
	return &faults.Crash{Rank: rank, AfterSends: after}, nil
}

func envInt(key string) int {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptrun: bad %s=%q\n", key, os.Getenv(key))
		os.Exit(1)
	}
	return v
}
