package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end: build the real binary and drive real OS processes over TCP
// loopback. Skipped in -short (each scenario forks a process tree).

func buildAdaptrun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "adaptrun")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestE2ECleanVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short")
	}
	bin := buildAdaptrun(t)
	out, err := exec.Command(bin, "-n", "8", "-coll", "bcast,reduce,allreduce", "-perf").CombinedOutput()
	if err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"core/bcast-binomial", "core/reduce", "core/allreduce",
		"verified against simmpi golden", "trouble 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestE2ECrashDeadRoot kills the root worker process before it sends a
// byte: the launcher must report a structured rank-failed outcome from
// every survivor — the acceptance criterion for the fail-stop path.
func TestE2ECrashDeadRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short")
	}
	bin := buildAdaptrun(t)
	out, err := exec.Command(bin, "-n", "4", "-coll", "bcast", "-crash", "0:0").CombinedOutput()
	if err != nil {
		t.Fatalf("dead-root run not structured: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "lost (planned crash)") {
		t.Errorf("launcher did not notice the planned crash:\n%s", text)
	}
	if strings.Count(text, "rank-failed") != 3 {
		t.Errorf("want 3 survivors reporting rank-failed:\n%s", text)
	}
	if !strings.Contains(text, "confirmed dead") {
		t.Errorf("survivor errors are not the structured RankFailedError:\n%s", text)
	}
}

// TestE2ECrashNonRootHeals kills a mid-tree worker; both collectives must
// heal and complete on the survivors.
func TestE2ECrashNonRootHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short")
	}
	bin := buildAdaptrun(t)
	out, err := exec.Command(bin, "-n", "4", "-coll", "bcast,reduce", "-crash", "2:1").CombinedOutput()
	if err != nil {
		t.Fatalf("healed run failed: %v\n%s", err, out)
	}
	text := string(out)
	if strings.Count(text, "ok (4 ranks") != 2 {
		t.Errorf("want both FT collectives ok on survivors:\n%s", text)
	}
}
