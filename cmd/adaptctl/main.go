// Command adaptctl is the terminal client for a running adaptd's admin
// plane (adaptd -admin ADDR): it renders the daemon's live status —
// sessions, backends with generations, request-latency quantiles,
// per-link FEC health, perf counter windows — from one /statusz scrape,
// or continuously.
//
// Usage:
//
//	adaptctl -addr 127.0.0.1:7078             # one-shot status
//	adaptctl -addr 127.0.0.1:7078 -watch 1s   # live view, redrawn per interval
//	adaptctl -addr 127.0.0.1:7078 -metrics    # raw Prometheus exposition
//	adaptctl -addr 127.0.0.1:7078 -check -out BENCH_obs.json
//
// -check is the observability bench gate (make obs): it scrapes the
// plane under load and fails unless the Prometheus exposition parses,
// the serving-layer latency histogram is non-empty, /healthz reports
// ready, and the trouble counters (overloads, rank failures, net
// faults) are zero. The scrape evidence lands in -out as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"adapt/internal/metrics"
	"adapt/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "adaptd admin address (host:port), required")
	watch := flag.Duration("watch", 0, "redraw the status view at this interval (0 = one shot)")
	rawMetrics := flag.Bool("metrics", false, "dump the raw Prometheus exposition and exit")
	check := flag.Bool("check", false, "run the observability gate against a loaded daemon")
	out := flag.String("out", "", "write -check evidence JSON here")
	timeout := flag.Duration("timeout", 10*time.Second, "-check retry deadline")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "adaptctl: -addr is required (the daemon's -admin address)")
		return 2
	}

	switch {
	case *rawMetrics:
		body, err := get(*addr, "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptctl: %v\n", err)
			return 1
		}
		os.Stdout.Write(body)
		return 0
	case *check:
		return runCheck(*addr, *out, *timeout)
	case *watch > 0:
		for {
			st, healthy, err := scrape(*addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adaptctl: %v\n", err)
				return 1
			}
			// Home the cursor and clear below: a flicker-free redraw.
			fmt.Print("\x1b[H\x1b[J")
			render(os.Stdout, *addr, st, healthy)
			time.Sleep(*watch)
		}
	default:
		st, healthy, err := scrape(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptctl: %v\n", err)
			return 1
		}
		render(os.Stdout, *addr, st, healthy)
		return 0
	}
}

func get(addr, path string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return body, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// scrape pulls one /statusz document plus the health bit.
func scrape(addr string) (metrics.Statusz, bool, error) {
	var st metrics.Statusz
	body, err := get(addr, "/statusz")
	if err != nil {
		return st, false, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, false, fmt.Errorf("bad /statusz JSON: %v", err)
	}
	_, herr := get(addr, "/healthz")
	return st, herr == nil, nil
}

// appReport re-decodes the /statusz app section as the daemon's
// StatusReport (nil when the section is absent or a different shape).
func appReport(st metrics.Statusz) *serve.StatusReport {
	if st.App == nil {
		return nil
	}
	raw, err := json.Marshal(st.App)
	if err != nil {
		return nil
	}
	var rep serve.StatusReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil
	}
	return &rep
}

// ns renders a nanosecond quantity as a rounded duration.
func ns(v uint64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

func render(w io.Writer, addr string, st metrics.Statusz, healthy bool) {
	health := "healthy"
	if !healthy {
		health = "DRAINING"
	}
	fmt.Fprintf(w, "adaptd @ %s   up %.1fs   window %.1fs   %s\n",
		addr, st.UptimeSecs, st.WindowSecs, health)

	if rep := appReport(st); rep != nil {
		fmt.Fprintf(w, "sessions %d live / %d total   requests %d   responses %d   proxy ops %d\n",
			rep.Sessions, rep.SessionsTotal, rep.Requests, rep.Responses, rep.ProxyOps)
		if len(rep.Backends) > 0 {
			fmt.Fprintln(w, "backends:")
			for _, b := range rep.Backends {
				extra := ""
				if b.Evicted {
					extra += "  EVICTED"
				}
				if len(b.DeadRanks) > 0 {
					extra += fmt.Sprintf("  dead=%v", b.DeadRanks)
				}
				fmt.Fprintf(w, "  %-40s gen=%d world=%d refs=%d tokens=%d/%d%s\n",
					b.Key, b.Gen, b.World, b.Refs, b.TokensInUse, b.TokenPool, extra)
			}
		}
		if len(rep.SessionList) > 0 {
			fmt.Fprintln(w, "sessions:")
			for _, s := range rep.SessionList {
				role := "service"
				if s.ProxyRank >= 0 {
					role = fmt.Sprintf("proxy r%d", s.ProxyRank)
				}
				fmt.Fprintf(w, "  #%-6d %-10s pending=%-4d %s\n", s.ID, role, s.Pending, s.Backend)
			}
		}
	}

	if len(st.Histograms) > 0 {
		fmt.Fprintln(w, "latency / size quantiles:")
		for _, h := range st.Histograms {
			id := h.Name
			if h.Labels != "" {
				id += "{" + h.Labels + "}"
			}
			if strings.HasSuffix(h.Name, "_ns") {
				fmt.Fprintf(w, "  %-56s n=%-8d p50=%-10s p90=%-10s p99=%-10s p999=%s\n",
					id, h.Count, ns(h.P50), ns(h.P90), ns(h.P99), ns(h.P999))
			} else {
				fmt.Fprintf(w, "  %-56s n=%-8d p50=%-10d p90=%-10d p99=%-10d p999=%d\n",
					id, h.Count, h.P50, h.P90, h.P99, h.P999)
			}
		}
	}

	var nz []string
	for _, c := range st.Counters {
		if c.Value == 0 {
			continue
		}
		id := c.Name
		if c.Labels != "" {
			id += "{" + c.Labels + "}"
		}
		nz = append(nz, fmt.Sprintf("%s=%d", id, c.Value))
	}
	for _, g := range st.Gauges {
		id := g.Name
		if g.Labels != "" {
			id += "{" + g.Labels + "}"
		}
		nz = append(nz, fmt.Sprintf("%s=%d", id, g.Value))
	}
	if len(nz) > 0 {
		sort.Strings(nz)
		fmt.Fprintf(w, "counters/gauges: %s\n", strings.Join(nz, "  "))
	}

	if len(st.Links) > 0 {
		fmt.Fprintln(w, "links (FEC health):")
		for _, l := range st.Links {
			fmt.Fprintf(w, "  %d->%d  loss=%.4f  m=%d\n", l.Src, l.Dst, l.Loss, l.M)
		}
	}

	p := st.PerfWindow
	fmt.Fprintf(w, "perf window: serve reqs %d (fused %d in %d batches, overloads %d)  net %d/%d frames out/in  fec enc %d rebuilt %d lost %d  trouble %d\n",
		p.ServeRequests, p.ServeFusedReqs, p.ServeFusedBatch, p.ServeOverloads,
		p.NetFramesOut, p.NetFramesIn,
		p.FecEncoded, p.FecReconstructed, p.FecGroupLost,
		st.Perf.ServeTrouble()+st.Perf.NetTrouble())
}

// sampleLine is one well-formed exposition sample (the shape
// WritePrometheus emits and the golden test pins).
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+$`)

// parseExposition validates Prometheus text and counts samples.
func parseExposition(text string) (samples int, err error) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			return samples, fmt.Errorf("malformed exposition line: %q", line)
		}
		samples++
	}
	return samples, nil
}

// checkEvidence is the BENCH_obs.json document -check writes.
type checkEvidence struct {
	Addr            string                    `json:"addr"`
	Pass            bool                      `json:"pass"`
	Attempts        int                       `json:"attempts"`
	Samples         int                       `json:"prom_samples"`
	Healthy         bool                      `json:"healthy"`
	Trouble         uint64                    `json:"trouble"`
	UptimeSecs      float64                   `json:"uptime_secs"`
	RequestLatency  []metrics.QuantileSummary `json:"request_latency"`
	Failures        []string                  `json:"failures,omitempty"`
	SessionsTotal   uint64                    `json:"sessions_total"`
	RequestsServed  uint64                    `json:"requests_served"`
	ResponsesServed uint64                    `json:"responses_served"`
}

// runCheck is the bench gate: retry until the plane shows a loaded,
// healthy daemon or the deadline passes, then record the evidence.
func runCheck(addr, outPath string, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	var ev checkEvidence
	ev.Addr = addr
	for {
		ev.Attempts++
		ev = tryCheck(addr, ev)
		if ev.Pass || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if outPath != "" {
		raw, _ := json.MarshalIndent(ev, "", "  ")
		raw = append(raw, '\n')
		if err := os.WriteFile(outPath, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "adaptctl: write %s: %v\n", outPath, err)
			return 1
		}
	}
	if !ev.Pass {
		fmt.Fprintf(os.Stderr, "adaptctl: check FAILED after %d attempts: %s\n",
			ev.Attempts, strings.Join(ev.Failures, "; "))
		return 1
	}
	fmt.Printf("adaptctl: check ok (%d exposition samples, %d requests observed, trouble 0)\n",
		ev.Samples, ev.RequestsServed)
	return 0
}

func tryCheck(addr string, ev checkEvidence) checkEvidence {
	ev.Failures = nil
	ev.Pass = false
	ev.RequestLatency = nil

	promBody, err := get(addr, "/metrics")
	if err != nil {
		ev.Failures = append(ev.Failures, fmt.Sprintf("/metrics: %v", err))
		return ev
	}
	ev.Samples, err = parseExposition(string(promBody))
	if err != nil {
		ev.Failures = append(ev.Failures, err.Error())
	} else if ev.Samples == 0 {
		ev.Failures = append(ev.Failures, "exposition has no samples")
	}

	st, healthy, err := scrape(addr)
	if err != nil {
		ev.Failures = append(ev.Failures, err.Error())
		return ev
	}
	ev.Healthy = healthy
	ev.UptimeSecs = st.UptimeSecs
	if !healthy {
		ev.Failures = append(ev.Failures, "/healthz not ready")
	}

	for _, h := range st.Histograms {
		if h.Name == "adapt_serve_request_latency_ns" {
			ev.RequestLatency = append(ev.RequestLatency, h)
		}
	}
	loaded := false
	for _, h := range ev.RequestLatency {
		if h.Count > 0 && h.P50 > 0 && h.P999 >= h.P50 {
			loaded = true
		}
	}
	if !loaded {
		ev.Failures = append(ev.Failures, "request latency quantiles empty (no load observed)")
	}

	ev.Trouble = st.Perf.ServeTrouble() + st.Perf.NetTrouble()
	if ev.Trouble != 0 {
		ev.Failures = append(ev.Failures, fmt.Sprintf("trouble counters nonzero (%d)", ev.Trouble))
	}

	if rep := appReport(st); rep != nil {
		ev.SessionsTotal = rep.SessionsTotal
		ev.RequestsServed = rep.Requests
		ev.ResponsesServed = rep.Responses
		if rep.Requests == 0 {
			ev.Failures = append(ev.Failures, "daemon reports zero requests")
		}
	} else {
		ev.Failures = append(ev.Failures, "/statusz app section missing or not a StatusReport")
	}

	ev.Pass = len(ev.Failures) == 0
	return ev
}
