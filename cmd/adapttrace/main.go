// Command adapttrace analyzes causal trace files written by
// adaptbench -ctrace (Chrome trace-event JSON, loadable in Perfetto).
//
// Usage:
//
//	adapttrace t.json                    # full report for every run
//	adapttrace -list-runs t.json         # captured run names
//	adapttrace -run 3 -critical t.json   # critical path of run 3
//	adapttrace -overlap -lanes t.json    # selected sections only
//
// The critical path is the chain of causally linked events (callback →
// posted op, matched receive → send) that ends at the run's last event;
// its final timestamp is the run's makespan. Each hop's wait is
// attributed to link wait, compute, or pipeline stall.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"adapt/internal/trace"
	"adapt/internal/trace/analyze"
)

func main() {
	os.Exit(run())
}

func run() int {
	listRuns := flag.Bool("list-runs", false, "list the captured runs and exit")
	runSel := flag.String("run", "", "select one run by index or name (default: all)")
	critical := flag.Bool("critical", false, "print the critical path with per-hop attribution")
	overlap := flag.Bool("overlap", false, "print per-level send overlap for tree collectives")
	lanes := flag.Bool("lanes", false, "print per-segment transfer lanes")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "adapttrace: exactly one trace file required (from adaptbench -ctrace)")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "adapttrace:", err)
		return 1
	}
	runs, err := trace.ReadChrome(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adapttrace:", err)
		return 1
	}
	if *listRuns {
		for i, r := range runs {
			fmt.Printf("[%d] %s (%d events)\n", i, r.Name, len(r.Records))
		}
		return 0
	}

	selected := runs
	if *runSel != "" {
		selected = nil
		if idx, err := strconv.Atoi(*runSel); err == nil && idx >= 0 && idx < len(runs) {
			selected = runs[idx : idx+1]
		} else {
			for _, r := range runs {
				if r.Name == *runSel {
					selected = append(selected, r)
				}
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "adapttrace: no run %q (try -list-runs)\n", *runSel)
			return 2
		}
	}

	sections := *critical || *overlap || *lanes
	for i, r := range selected {
		if i > 0 {
			fmt.Println()
		}
		g := analyze.New(r)
		if !sections {
			g.Report(os.Stdout)
			continue
		}
		fmt.Printf("run %q: %d events\n", r.Name, len(r.Records))
		p := g.CriticalPath()
		if *critical {
			analyze.FprintPath(os.Stdout, p)
		}
		if *overlap {
			analyze.FprintOverlap(os.Stdout, g.OverlapByLevel())
		}
		if *lanes {
			analyze.FprintLanes(os.Stdout, g.SegmentLanes(), p.Makespan, 64, 32)
		}
	}
	return 0
}
