// Command asp runs the all-pairs shortest-path application (paper §5.3):
// live mode executes real Floyd–Warshall on the in-process runtime and
// verifies the result; sim mode reproduces Table 1's timing breakdown on
// a simulated cluster.
//
// Examples:
//
//	asp -mode live -n 256 -ranks 8
//	asp -mode sim -n 16384 -iters 128 -nodes 32 -lib ompi-adapt
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"

	"adapt/internal/asp"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/runtime"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func main() {
	mode := flag.String("mode", "live", "live or sim")
	n := flag.Int("n", 256, "matrix dimension")
	ranks := flag.Int("ranks", 8, "live mode: number of ranks")
	iters := flag.Int("iters", 0, "iterations to execute (0 = n in live, 128 in sim)")
	nodes := flag.Int("nodes", 32, "sim mode: Cori nodes")
	libName := flag.String("lib", "ompi-adapt", "sim mode: library proxy")
	seed := flag.Int64("seed", 1, "graph seed (live mode)")
	flag.Parse()

	switch *mode {
	case "live":
		runLive(*n, *ranks, *seed)
	case "sim":
		it := *iters
		if it == 0 {
			it = 128
		}
		runSim(*n, it, *nodes, *libName)
	default:
		fmt.Fprintf(os.Stderr, "asp: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runLive(n, ranks int, seed int64) {
	graph := randGraph(n, seed)
	want := copyMatrix(graph)
	asp.Sequential(want)

	w := runtime.NewWorld(ranks)
	var mu sync.Mutex
	var res asp.Result
	got := make([][]float64, n)
	w.Run(func(c *runtime.Comm) {
		lo, hi := rowRange(n, ranks, c.Rank())
		local := copyMatrix(graph[lo:hi])
		r := asp.Run(c, asp.Config{
			N: n, Iters: n, ElemSize: 8, WithData: true,
			Bcast: func(c comm.Comm, root int, msg comm.Msg, seq int) comm.Msg {
				opt := core.DefaultOptions()
				opt.Seq = seq
				return core.Bcast(c, trees.Binomial(c.Size(), root), msg, opt)
			},
		}, local)
		mu.Lock()
		for i := lo; i < hi; i++ {
			got[i] = local[i-lo]
		}
		if c.Rank() == 0 {
			res = r
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i][j] != want[i][j] {
				fmt.Fprintf(os.Stderr, "asp: VERIFICATION FAILED at [%d][%d]: %v != %v\n",
					i, j, got[i][j], want[i][j])
				os.Exit(1)
			}
		}
	}
	fmt.Printf("ASP live: N=%d on %d ranks — verified against sequential Floyd–Warshall\n", n, ranks)
	fmt.Printf("  communication %v, total %v (%.0f%% comm)\n",
		res.Comm, res.Total, 100*float64(res.Comm)/float64(res.Total))
}

func runSim(n, iters, nodes int, libName string) {
	p := netmodel.Cori(nodes)
	lib, err := libmodel.ByName(libName, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asp:", err)
		os.Exit(1)
	}
	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	var res asp.Result
	w.Spawn(func(c *simmpi.Comm) {
		r := asp.Run(c, asp.Config{N: n, Iters: iters, ElemSize: 8, Bcast: lib.Bcast}, nil)
		if c.Rank() == 0 {
			res = r
		}
	})
	k.MustRun()
	full := res.Scaled(n)
	fmt.Printf("ASP sim: N=%d on %d ranks (%s), %s, %d/%d iterations executed\n",
		n, p.Topo.Size(), p.Name, lib.Name, iters, n)
	fmt.Printf("  communication %.2fs, total %.2fs (%.0f%% comm), scaled to full run\n",
		full.Comm.Seconds(), full.Total.Seconds(), 100*float64(full.Comm)/float64(full.Total))
}

func rowRange(n, p, r int) (int, int) {
	base, extra := n/p, n%p
	lo := r*base + minInt(r, extra)
	hi := lo + base
	if r < extra {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func randGraph(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case rng.Float64() < 0.3:
				d[i][j] = 1 + 9*rng.Float64()
			default:
				d[i][j] = math.Inf(1)
			}
		}
	}
	return d
}

func copyMatrix(d [][]float64) [][]float64 {
	out := make([][]float64, len(d))
	for i := range d {
		out[i] = append([]float64(nil), d[i]...)
	}
	return out
}
