// Command adaptbench regenerates the paper's evaluation exhibits
// (Figures 7–11 and Table 1) on the simulated substrate.
//
// Usage:
//
//	adaptbench -exp fig9a                # one exhibit at full paper scale
//	adaptbench -exp all -scale quick     # everything, reduced scale
//	adaptbench -exp all -j 8             # cells on 8 workers, same output
//	adaptbench -exp fig9a -cpuprofile cpu.pprof -perf
//	adaptbench -list
//
// Independent experiment cells (library × noise × size points) each own a
// private deterministic simulation kernel, so -j N runs them on N workers
// with output bit-identical to -j 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adapt/internal/bench"
	"adapt/internal/faults"
	"adapt/internal/perf"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id (fig7a..fig11b, table1, all)")
	scale := flag.String("scale", "full", "full (paper scale) or quick")
	out := flag.String("o", "", "write output to file instead of stdout")
	csvDir := flag.String("csv", "", "additionally write one CSV per table into this directory")
	jobs := flag.Int("j", bench.DefaultJobs(), "worker count for independent experiment cells (1 = serial)")
	list := flag.Bool("list", false, "list experiment ids")
	perfStats := flag.Bool("perf", false, "print kernel/buffer-pool counters to stderr when done")
	faultPlan := flag.String("faults", "", `fault plan for the ext-chaos exhibit, e.g. "seed=42; all: drop=0.1, jitter=30us"; crash rules ("crash@3", "crash@R:afterK") feed ext-crash`)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file when done")
	traceFile := flag.String("trace", "", "write a Go execution trace to this file")
	flag.Parse()

	if *list {
		ids := append(bench.Experiments(), bench.Extensions()...)
		fmt.Println(strings.Join(append(ids, "all"), "\n"))
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "adaptbench: -exp required (try -list)")
		return 2
	}
	var s bench.Scale
	switch *scale {
	case "full":
		s = bench.Full()
	case "quick":
		s = bench.Quick()
	default:
		fmt.Fprintf(os.Stderr, "adaptbench: unknown scale %q\n", *scale)
		return 2
	}
	if *faultPlan != "" {
		plan, err := faults.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 2
		}
		s.FaultPlan = &plan
	}

	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer stop()
	}
	if *traceFile != "" {
		stop, err := perf.StartTrace(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer stop()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	tables, err := bench.RunTablesParallel(*exp, s, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		return 1
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			f.Close()
		}
	}
	if *memProfile != "" {
		if err := perf.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
	}
	if *perfStats {
		perf.Read().Fprint(os.Stderr)
	}
	return 0
}
