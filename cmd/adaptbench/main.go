// Command adaptbench regenerates the paper's evaluation exhibits
// (Figures 7–11 and Table 1) on the simulated substrate.
//
// Usage:
//
//	adaptbench -exp fig9a                # one exhibit at full paper scale
//	adaptbench -exp all -scale quick     # everything, reduced scale
//	adaptbench -exp all -j 8             # cells on 8 workers, same output
//	adaptbench -exp fig9a -cpuprofile cpu.pprof -perf
//	adaptbench -list
//
// Independent experiment cells (library × noise × size points) each own a
// private deterministic simulation kernel, so -j N runs them on N workers
// with output bit-identical to -j 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"adapt/internal/bench"
	"adapt/internal/faults"
	"adapt/internal/metrics"
	"adapt/internal/perf"
	"adapt/internal/trace"
	"adapt/internal/trace/analyze"
)

// validIDs returns the experiment ids -list prints, one per line.
func validIDs() string {
	ids := append(bench.Experiments(), bench.Extensions()...)
	return strings.Join(append(ids, "all"), "\n")
}

// knownExp reports whether id names an experiment.
func knownExp(id string) bool {
	for _, v := range strings.Split(validIDs(), "\n") {
		if id == v {
			return true
		}
	}
	return false
}

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id (fig7a..fig11b, table1, all)")
	scale := flag.String("scale", "full", "full (paper scale) or quick")
	out := flag.String("o", "", "write output to file instead of stdout")
	csvDir := flag.String("csv", "", "additionally write one CSV per table into this directory")
	jobs := flag.Int("j", bench.DefaultJobs(), "worker count for independent experiment cells (1 = serial)")
	list := flag.Bool("list", false, "list experiment ids")
	perfStats := flag.Bool("perf", false, "print kernel/buffer-pool counters to stderr when done")
	faultPlan := flag.String("faults", "", `fault plan for the ext-chaos exhibit, e.g. "seed=42; all: drop=0.1, jitter=30us"; crash rules ("crash@3", "crash@R:afterK") feed ext-crash`)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file when done")
	traceFile := flag.String("trace", "", "write a Go execution trace to this file")
	perfJSON := flag.String("perf-json", "", "write kernel/buffer-pool counters as JSON to this file when done")
	ctrace := flag.String("ctrace", "", "capture causal event traces and write Chrome trace-event JSON (Perfetto) to this file")
	ctraceCap := flag.Int("ctrace-cap", 500_000, "per-cell causal-trace record cap (0 = unbounded)")
	ctraceReport := flag.Bool("ctrace-report", false, "print a critical-path/overlap report for the captured traces")
	fecJSON := flag.String("fec-json", "", "run the FEC loss sweep, write it as JSON to this file, and fail unless the zero-retransmit gate holds")
	serveAddr := flag.String("serve", "", "benchmark a running adaptd at this address instead of the simulated exhibits")
	servePoints := flag.String("serve-points", "1x64,4x64,16x32", "comma-separated SESSIONSxREQUESTS load points for -serve")
	serveWorld := flag.Int("serve-world", 4, "backend world size for -serve requests")
	serveElems := flag.Int("serve-elems", 16, "per-rank elements for -serve requests")
	servePipeline := flag.Int("serve-pipeline", 4, "in-flight requests per session for -serve")
	serveAdmin := flag.String("serve-admin", "", "daemon admin address: fold its per-point perf window (statusz delta) into the -serve report")
	adminAddr := flag.String("admin", "", "expose this process's own telemetry/pprof admin plane at this address")
	ranksLadder := flag.String("ranks", "", `kernel-scaling ladder: comma-separated rank counts ("1k,10k,100k,1m") run through proc- and flat-mode collectives, reporting events/s, peak RSS, and ranks/GB`)
	ranksJSON := flag.String("ranks-json", "", "write the -ranks ladder rows as a JSON array to this file")
	ranksColls := flag.String("ranks-coll", "bcast,reduce,allreduce", "collectives for the -ranks ladder")
	ranksCell := flag.String("ranks-cell", "", "internal: run one scale cell (mode/collective/ranks) in-process and print its JSON row")
	flag.Parse()

	if *list {
		fmt.Println(validIDs())
		return 0
	}
	if *ranksCell != "" {
		return runScaleCell(*ranksCell)
	}
	if *ranksLadder != "" {
		return runScaleLadder(os.Stdout, *ranksLadder, *ranksColls, *ranksJSON)
	}
	if *adminAddr != "" {
		admin, err := metrics.ServeAdmin(*adminAddr, metrics.AdminOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "adaptbench: admin on %s\n", admin.Addr())
	}
	if *serveAddr != "" {
		points, err := parseServePoints(*servePoints)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 2
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			defer f.Close()
			w = io.MultiWriter(os.Stdout, f)
		}
		if err := runServeBench(w, *serveAddr, *serveAdmin, points, *serveWorld, *serveElems, *servePipeline); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		return 0
	}
	if *fecJSON != "" {
		var s bench.Scale
		switch *scale {
		case "full":
			s = bench.Full()
		case "quick":
			s = bench.Quick()
		default:
			fmt.Fprintf(os.Stderr, "adaptbench: unknown scale %q\n", *scale)
			return 2
		}
		rep := s.FECSweep()
		b, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*fecJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		if err := rep.GateErr(); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "adaptbench: wrote %s (gates pass)\n", *fecJSON)
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "adaptbench: -exp required (try -list)")
		return 2
	}
	if !knownExp(*exp) {
		fmt.Fprintf(os.Stderr, "adaptbench: unknown experiment %q; valid ids:\n", *exp)
		fmt.Fprintln(os.Stderr, validIDs())
		return 2
	}
	var s bench.Scale
	switch *scale {
	case "full":
		s = bench.Full()
	case "quick":
		s = bench.Quick()
	default:
		fmt.Fprintf(os.Stderr, "adaptbench: unknown scale %q\n", *scale)
		return 2
	}
	if *faultPlan != "" {
		plan, err := faults.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 2
		}
		s.FaultPlan = &plan
	}

	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer stop()
	}
	if *traceFile != "" {
		stop, err := perf.StartTrace(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer stop()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if *ctrace != "" || *ctraceReport {
		s.CTrace = &bench.TraceSink{Cap: *ctraceCap}
	}
	tables, err := bench.RunTablesParallel(*exp, s, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		return 1
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	if s.CTrace != nil {
		runs := s.CTrace.Runs()
		if *ctrace != "" {
			f, err := os.Create(*ctrace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			err = trace.WriteChrome(f, runs)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "adaptbench: wrote %d causal trace runs to %s\n", len(runs), *ctrace)
		}
		if *ctraceReport {
			ctraceSummary(w, runs)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				return 1
			}
			f.Close()
		}
	}
	if *memProfile != "" {
		if err := perf.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
	}
	if *perfJSON != "" {
		b, err := perf.Read().JSON()
		if err == nil {
			err = os.WriteFile(*perfJSON, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
	}
	if *perfStats {
		perf.Read().Fprint(os.Stderr)
	}
	return 0
}

// ctraceSummary prints one line per captured run (critical-path
// attribution shares) and the full analyzer report for the longest run.
func ctraceSummary(w io.Writer, runs []trace.Run) {
	fmt.Fprintf(w, "\ncausal traces: %d runs\n", len(runs))
	longest, longestSpan := -1, time.Duration(0)
	for i, run := range runs {
		g := analyze.New(run)
		p := g.CriticalPath()
		fmt.Fprintf(w, "  [%d] %-40s %6d events  makespan %-12v link %s compute %s stall %s\n",
			i, run.Name, len(run.Records), p.Makespan.Round(time.Microsecond),
			sharePct(p.Link, p.Makespan), sharePct(p.Compute, p.Makespan), sharePct(p.Stall, p.Makespan))
		if p.Makespan > longestSpan {
			longest, longestSpan = i, p.Makespan
		}
	}
	if longest >= 0 {
		fmt.Fprintf(w, "\nlongest run [%d] %s:\n", longest, runs[longest].Name)
		analyze.New(runs[longest]).Report(w)
	}
}

func sharePct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}
