// Command adaptbench regenerates the paper's evaluation exhibits
// (Figures 7–11 and Table 1) on the simulated substrate.
//
// Usage:
//
//	adaptbench -exp fig9a                # one exhibit at full paper scale
//	adaptbench -exp all -scale quick     # everything, reduced scale
//	adaptbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adapt/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig7a..fig11b, table1, all)")
	scale := flag.String("scale", "full", "full (paper scale) or quick")
	out := flag.String("o", "", "write output to file instead of stdout")
	csvDir := flag.String("csv", "", "additionally write one CSV per table into this directory")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		ids := append(bench.Experiments(), bench.Extensions()...)
		fmt.Println(strings.Join(append(ids, "all"), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "adaptbench: -exp required (try -list)")
		os.Exit(2)
	}
	var s bench.Scale
	switch *scale {
	case "full":
		s = bench.Full()
	case "quick":
		s = bench.Quick()
	default:
		fmt.Fprintf(os.Stderr, "adaptbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	tables, err := bench.RunTables(*exp, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "adaptbench:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
