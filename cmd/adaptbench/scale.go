package main

// The million-rank kernel-scaling ladder: adaptbench -ranks runs tree
// broadcast/reduce and allreduce at growing rank counts, in both the
// goroutine-per-rank (proc) and struct-per-rank (flat) drivers, and
// reports wall-clock event throughput, peak RSS, and ranks per GB of
// memory. Each cell re-execs this binary so VmHWM measures exactly one
// configuration. Rows land in BENCH_kernel.json via scripts/scale.sh.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/perf"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

const (
	ranksPerNode = 32      // Cori node shape; every rung is a multiple
	procRankCap  = 1 << 17 // proc mode stops here: goroutine stacks alone would blow the RSS budget
	scaleMsgSize = 1 << 10 // eager-path payload; the ladder stresses event dispatch, not bytes
	rssBudgetKB  = 8 << 20 // 8 GB: the ≥100k broadcast rung must fit under this
)

type scaleRow struct {
	Name         string  `json:"name"` // ScaleFlatBcast/102400 — keyed like the microbench rows
	Mode         string  `json:"mode"`
	Collective   string  `json:"collective"`
	Ranks        int     `json:"ranks"`
	Events       uint64  `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	MakespanNS   int64   `json:"makespan_ns"`
	RSSKB        int64   `json:"rss_kb"`
	RanksPerGB   float64 `json:"ranks_per_gb"`
}

// parseRung accepts "1k", "10k", "100k", "1m", or a plain integer, and
// rounds down to a whole number of nodes.
func parseRung(s string) (int, error) {
	mult := 1
	t := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(t, "m"):
		mult, t = 1<<20, strings.TrimSuffix(t, "m")
	case strings.HasSuffix(t, "k"):
		mult, t = 1<<10, strings.TrimSuffix(t, "k")
	}
	n, err := strconv.Atoi(t)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad rank count %q", s)
	}
	r := n * mult
	if r < ranksPerNode {
		r = ranksPerNode
	}
	return r - r%ranksPerNode, nil
}

// runScaleCell executes one "mode/collective/ranks" cell in-process and
// prints its JSON row to stdout (the parent re-execed us for a clean
// VmHWM). Exit status 1 on any failure.
func runScaleCell(spec string) int {
	parts := strings.Split(spec, "/")
	if len(parts) != 3 {
		fmt.Fprintf(os.Stderr, "adaptbench: bad -ranks-cell %q (want mode/collective/ranks)\n", spec)
		return 2
	}
	mode, coll := parts[0], parts[1]
	ranks, err := strconv.Atoi(parts[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptbench: bad -ranks-cell rank count %q\n", parts[2])
		return 2
	}
	row, err := measureCell(mode, coll, ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		return 1
	}
	b, err := json.Marshal(row)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		return 1
	}
	fmt.Println(string(b))
	return 0
}

func measureCell(mode, coll string, ranks int) (scaleRow, error) {
	p := netmodel.Cori(ranks / ranksPerNode)
	// O(classes) facilities: the exact per-rank model would spend the
	// whole RSS budget on resource structs and their names.
	p.Aggregate = true
	tree := trees.Binomial(ranks, 0)
	opt := core.DefaultOptions()
	msg := comm.Sized(scaleMsgSize) // payload-elided: pure event-rate measurement

	k := sim.New()
	w := simmpi.NewWorld(k, p, noise.None)
	var ops []*core.Op
	switch mode {
	case "flat":
		w.SpawnFlat(func(c *simmpi.Comm) {
			var op *core.Op
			switch coll {
			case "bcast":
				op = core.StartBcast(c, tree, msg, opt)
			case "reduce":
				op = core.StartReduce(c, tree, msg, opt)
			case "allreduce":
				op = core.StartAllreduce(c, tree, msg, opt)
			default:
				panic("unknown collective " + coll)
			}
			ops = append(ops, op)
		})
	case "proc":
		w.Spawn(func(c *simmpi.Comm) {
			switch coll {
			case "bcast":
				core.Bcast(c, tree, msg, opt)
			case "reduce":
				core.Reduce(c, tree, msg, opt)
			case "allreduce":
				core.Allreduce(c, tree, msg, opt)
			default:
				panic("unknown collective " + coll)
			}
		})
	default:
		return scaleRow{}, fmt.Errorf("unknown scale mode %q", mode)
	}

	perf.Reset()
	start := time.Now()
	makespan := k.MustRun()
	wall := time.Since(start)
	snap := perf.Read()
	for i, op := range ops {
		if !op.Done() {
			return scaleRow{}, fmt.Errorf("%s/%s/%d: rank %d op never completed", mode, coll, ranks, i)
		}
	}
	rss, err := peakRSSKB()
	if err != nil {
		return scaleRow{}, err
	}
	row := scaleRow{
		Name:       fmt.Sprintf("Scale%s%s/%d", title(mode), title(coll), ranks),
		Mode:       mode, Collective: coll, Ranks: ranks,
		Events: snap.EventsDispatched, WallNS: wall.Nanoseconds(),
		MakespanNS: makespan.Nanoseconds(), RSSKB: rss,
	}
	if wall > 0 {
		row.EventsPerSec = float64(snap.EventsDispatched) / wall.Seconds()
	}
	if rss > 0 {
		row.RanksPerGB = float64(ranks) / (float64(rss) / float64(1<<20))
	}
	return row, nil
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// peakRSSKB reads the process's high-water resident set from
// /proc/self/status (VmHWM, in kB).
func peakRSSKB() (int64, error) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) >= 2 && f[0] == "VmHWM:" {
			return strconv.ParseInt(f[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("no VmHWM in /proc/self/status")
}

// runScaleLadder fans the rung × collective × mode grid out to child
// processes, prints a table, enforces the scaling gates, and optionally
// writes the rows as a JSON array.
func runScaleLadder(w io.Writer, ladder, colls, jsonPath string) int {
	var rungs []int
	for _, s := range strings.Split(ladder, ",") {
		r, err := parseRung(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 2
		}
		rungs = append(rungs, r)
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench:", err)
		return 1
	}
	var rows []scaleRow
	for _, ranks := range rungs {
		for _, coll := range strings.Split(colls, ",") {
			for _, mode := range []string{"proc", "flat"} {
				if mode == "proc" && ranks > procRankCap {
					fmt.Fprintf(os.Stderr, "adaptbench: skipping proc/%s/%d (goroutine stacks exceed the RSS budget past %d ranks)\n",
						coll, ranks, procRankCap)
					continue
				}
				spec := fmt.Sprintf("%s/%s/%d", mode, coll, ranks)
				fmt.Fprintf(os.Stderr, "adaptbench: scale cell %s\n", spec)
				out, err := exec.Command(self, "-ranks-cell", spec).Output()
				if err != nil {
					if ee, ok := err.(*exec.ExitError); ok {
						os.Stderr.Write(ee.Stderr)
					}
					fmt.Fprintf(os.Stderr, "adaptbench: cell %s failed: %v\n", spec, err)
					return 1
				}
				var row scaleRow
				if err := json.Unmarshal(bytes.TrimSpace(out), &row); err != nil {
					fmt.Fprintf(os.Stderr, "adaptbench: cell %s: bad row %q: %v\n", spec, out, err)
					return 1
				}
				rows = append(rows, row)
			}
		}
	}

	fmt.Fprintf(w, "%-6s %-10s %10s %14s %12s %10s %12s\n",
		"mode", "coll", "ranks", "events/s", "events", "rss", "ranks/GB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-10s %10d %14.0f %12d %9dM %12.0f\n",
			r.Mode, r.Collective, r.Ranks, r.EventsPerSec, r.Events, r.RSSKB>>10, r.RanksPerGB)
	}

	if err := scaleGates(rows); err != nil {
		fmt.Fprintln(os.Stderr, "adaptbench: FAIL:", err)
		return 1
	}
	if jsonPath != "" {
		b, err := mergeScaleRows(jsonPath, rows)
		if err == nil {
			err = os.WriteFile(jsonPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "adaptbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "adaptbench: wrote %s\n", jsonPath)
	}
	return 0
}

// mergeScaleRows splices the fresh ladder rows into an existing JSON
// array (e.g. BENCH_kernel.json next to the microbench rows), replacing
// any stale Scale* rows from a previous run. A missing or empty file
// yields just the new rows.
func mergeScaleRows(path string, rows []scaleRow) ([]byte, error) {
	var all []map[string]interface{}
	if b, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(b)) > 0 {
		if err := json.Unmarshal(b, &all); err != nil {
			return nil, fmt.Errorf("existing %s is not a JSON array: %v", path, err)
		}
		keep := all[:0]
		for _, m := range all {
			if name, _ := m["name"].(string); !strings.HasPrefix(name, "Scale") {
				keep = append(keep, m)
			}
		}
		all = keep
	}
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		var m map[string]interface{}
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, err
		}
		all = append(all, m)
	}
	return json.MarshalIndent(all, "", "  ")
}

// scaleGates enforces the ladder's acceptance criteria: every ≥100k
// broadcast rung fits the 8 GB RSS budget, and wherever both drivers ran
// the same broadcast cell at ≥100k ranks, flat must beat proc on BOTH
// throughput and peak memory.
func scaleGates(rows []scaleRow) error {
	proc := map[int]scaleRow{}
	for _, r := range rows {
		if r.Collective == "bcast" && r.Mode == "proc" {
			proc[r.Ranks] = r
		}
	}
	for _, r := range rows {
		if r.Collective != "bcast" || r.Ranks < 100_000 {
			continue
		}
		if r.RSSKB >= rssBudgetKB {
			return fmt.Errorf("%s: peak RSS %d kB breaks the %d kB budget", r.Name, r.RSSKB, int(rssBudgetKB))
		}
		if p, ok := proc[r.Ranks]; ok && r.Mode == "flat" {
			if r.EventsPerSec <= p.EventsPerSec {
				return fmt.Errorf("flat bcast at %d ranks (%.0f events/s) does not beat proc (%.0f events/s)",
					r.Ranks, r.EventsPerSec, p.EventsPerSec)
			}
			if r.RSSKB >= p.RSSKB {
				return fmt.Errorf("flat bcast at %d ranks (%d kB) does not beat proc (%d kB)",
					r.Ranks, r.RSSKB, p.RSSKB)
			}
		}
	}
	return nil
}
