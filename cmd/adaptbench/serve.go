// adaptbench -serve: the daemon-client load generator. Instead of the
// simulated substrate, it opens S concurrent sessions against a running
// adaptd, streams R pipelined allreduce requests per session at each
// configured point, verifies every result against the closed-form sum,
// and reports throughput plus p50/p99 request latency as JSON
// (scripts/bench.sh writes it to BENCH_serve.json).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adapt/internal/metrics"
	"adapt/internal/serve"
)

// servePoint is one sessions×requests load point.
type servePoint struct {
	Sessions int
	Requests int
}

// parseServePoints parses "1x64,4x64,16x32" into load points.
func parseServePoints(s string) ([]servePoint, error) {
	var pts []servePoint
	for _, part := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), "x")
		if !ok {
			return nil, fmt.Errorf("bad -serve-points entry %q (want SESSIONSxREQUESTS)", part)
		}
		sn, err1 := strconv.Atoi(a)
		rn, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil || sn <= 0 || rn <= 0 {
			return nil, fmt.Errorf("bad -serve-points entry %q (want SESSIONSxREQUESTS)", part)
		}
		pts = append(pts, servePoint{Sessions: sn, Requests: rn})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("-serve-points is empty")
	}
	return pts, nil
}

// serveBenchRow is one point's measurement, serialized to the JSON report.
// The server_* fields appear with -serve-admin: the daemon's own perf
// window (perf.Snapshot.Delta between the scrapes bracketing the point),
// so the report pairs client-observed latency with what the daemon did.
type serveBenchRow struct {
	Sessions      int     `json:"sessions"`
	ReqsPerSess   int     `json:"requests_per_session"`
	World         int     `json:"world"`
	Elems         int     `json:"elems"`
	TotalRequests int     `json:"total_requests"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	ReqsPerSec    float64 `json:"reqs_per_sec"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`

	ServerRequests  uint64 `json:"server_requests,omitempty"`
	ServerFusedReqs uint64 `json:"server_fused_reqs,omitempty"`
	ServerBatches   uint64 `json:"server_fuse_batches,omitempty"`
	ServerOverloads uint64 `json:"server_overloads,omitempty"`
}

// scrapeStatusz pulls one /statusz document from the daemon's admin
// plane. Each scrape advances the endpoint's rolling perf window, so a
// scrape after a load point (with one before it) returns exactly that
// point's server-side delta.
func scrapeStatusz(adminAddr string) (metrics.Statusz, error) {
	var st metrics.Statusz
	resp, err := http.Get("http://" + adminAddr + "/statusz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /statusz: %s", resp.Status)
	}
	err = json.Unmarshal(body, &st)
	return st, err
}

// serveContrib builds the world*elems input whose element-wise tree sum
// has the closed form checked in serveWantSum. Lattice-exact values, so
// fuse-order and tree-order folds agree bitwise.
func serveContrib(world, elems, salt int) []float64 {
	vals := make([]float64, world*elems)
	for r := 0; r < world; r++ {
		for e := 0; e < elems; e++ {
			vals[r*elems+e] = float64((r+1)*(e+3) + salt)
		}
	}
	return vals
}

func serveWantSum(world, e, salt int) float64 {
	var sum float64
	for r := 0; r < world; r++ {
		sum += float64((r+1)*(e+3) + salt)
	}
	return sum
}

// runServeBench drives every load point against the daemon at addr and
// writes the JSON report to w. Each session keeps up to pipeline
// requests in flight; per-request latency is Start→Wait wall time.
func runServeBench(w io.Writer, addr, adminAddr string, points []servePoint, world, elems, pipeline int) error {
	if world < 1 {
		return fmt.Errorf("-serve-world must be >= 1")
	}
	if elems < 1 {
		return fmt.Errorf("-serve-elems must be >= 1")
	}
	if pipeline < 1 {
		pipeline = 1
	}
	rows := make([]serveBenchRow, 0, len(points))
	for pi, pt := range points {
		if adminAddr != "" {
			// Reset the admin plane's rolling window to this point's start.
			if _, err := scrapeStatusz(adminAddr); err != nil {
				return fmt.Errorf("-serve-admin %s: %w", adminAddr, err)
			}
		}
		lat, elapsed, err := runServePoint(addr, pt, world, elems, pipeline, pi)
		if err != nil {
			return fmt.Errorf("point %dx%d: %w", pt.Sessions, pt.Requests, err)
		}
		sort.Float64s(lat)
		total := pt.Sessions * pt.Requests
		row := serveBenchRow{
			Sessions:      pt.Sessions,
			ReqsPerSess:   pt.Requests,
			World:         world,
			Elems:         elems,
			TotalRequests: total,
			ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
			ReqsPerSec:    float64(total) / elapsed.Seconds(),
			P50us:         percentile(lat, 0.50),
			P99us:         percentile(lat, 0.99),
		}
		if adminAddr != "" {
			st, err := scrapeStatusz(adminAddr)
			if err != nil {
				return fmt.Errorf("-serve-admin %s: %w", adminAddr, err)
			}
			pw := st.PerfWindow
			row.ServerRequests = pw.ServeRequests
			row.ServerFusedReqs = pw.ServeFusedReqs
			row.ServerBatches = pw.ServeFusedBatch
			row.ServerOverloads = pw.ServeOverloads
		}
		rows = append(rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// runServePoint runs one sessions×requests point and returns the
// per-request latencies in microseconds plus the point's wall time.
func runServePoint(addr string, pt servePoint, world, elems, pipeline, pi int) ([]float64, time.Duration, error) {
	var (
		mu   sync.Mutex
		lats []float64
		errs []error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < pt.Sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			sessLats, err := runServeSession(addr, pt.Requests, world, elems, pipeline, pi*1_000_000+s*10_000)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("session %d: %w", s, err))
				return
			}
			lats = append(lats, sessLats...)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(errs) > 0 {
		return nil, 0, errs[0]
	}
	return lats, elapsed, nil
}

// runServeSession opens one session and streams its requests, keeping up
// to pipeline calls in flight, verifying every result.
func runServeSession(addr string, requests, world, elems, pipeline, saltBase int) ([]float64, error) {
	sess, err := serve.Dial(addr, serve.SessionOpts{World: world, Group: "bench", ProxyRank: -1})
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	type inflight struct {
		call  *serve.Call
		salt  int
		start time.Time
	}
	lats := make([]float64, 0, requests)
	window := make([]inflight, 0, pipeline)
	finish := func(f inflight) error {
		out, _, err := f.call.Wait()
		if err != nil {
			return err
		}
		lats = append(lats, float64(time.Since(f.start))/float64(time.Microsecond))
		for e, v := range out {
			if want := serveWantSum(world, e, f.salt); v != want {
				return fmt.Errorf("salt %d element %d: got %v, want %v", f.salt, e, v, want)
			}
		}
		return nil
	}
	for i := 0; i < requests; i++ {
		if len(window) == pipeline {
			if err := finish(window[0]); err != nil {
				return nil, err
			}
			window = window[1:]
		}
		salt := saltBase + i
		t0 := time.Now()
		c, err := sess.StartAllreduce(serveContrib(world, elems, salt))
		if err != nil {
			return nil, err
		}
		window = append(window, inflight{call: c, salt: salt, start: t0})
	}
	for _, f := range window {
		if err := finish(f); err != nil {
			return nil, err
		}
	}
	return lats, nil
}

// percentile returns the p-quantile of sorted microsecond latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
