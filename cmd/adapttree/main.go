// Command adapttree prints communication trees: shape statistics, the
// per-level edge census of the topology-aware tree, and (with -draw) the
// parent→children adjacency. Useful for understanding what the tree
// builders actually produce on a given machine.
//
// Examples:
//
//	adapttree -platform cori -nodes 4 -config topo
//	adapttree -platform psg -nodes 2 -config chain -draw
//	adapttree -size 16 -builder binomial -root 3 -draw
package main

import (
	"flag"
	"fmt"
	"os"

	"adapt/internal/hwloc"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/trees"
)

func main() {
	platform := flag.String("platform", "cori", "platform profile for topology-aware configs")
	nodes := flag.Int("nodes", 4, "number of nodes")
	config := flag.String("config", "topo", "topo (ADAPT default), reduce, chain — or use -builder")
	builder := flag.String("builder", "", "flat builder over -size ranks (chain, binary, binomial, 4-nomial, 4-ary, flat, twotree)")
	size := flag.Int("size", 16, "rank count for -builder mode")
	root := flag.Int("root", 0, "root rank")
	draw := flag.Bool("draw", false, "print the adjacency")
	flag.Parse()

	if *builder != "" {
		printFlat(*builder, *size, *root, *draw)
		return
	}
	p, err := netmodel.ByName(*platform, *nodes)
	fail(err)
	var cfg trees.TopoConfig
	switch *config {
	case "topo":
		cfg = libmodel.AdaptDefaultConfig()
	case "reduce":
		cfg = libmodel.AdaptReduceConfig()
	case "chain":
		cfg = trees.ChainConfig()
	default:
		fail(fmt.Errorf("unknown config %q", *config))
	}
	t := trees.Topology(p.Topo, *root, cfg)
	fmt.Printf("machine: %s\n", p.Topo)
	fmt.Printf("config: inter-node=%s inter-socket=%s intra-socket=%s\n",
		cfg.InterNode.Name, cfg.InterSocket.Name, cfg.IntraSocket.Name)
	describe(t)
	censusByLevel(p.Topo, t)
	if *draw {
		drawTree(t)
	}
}

func printFlat(name string, size, root int, draw bool) {
	if name == "twotree" {
		a, b := trees.TwoTree(size, root)
		fmt.Println("two-tree A:")
		describe(a)
		fmt.Println("two-tree B:")
		describe(b)
		if draw {
			drawTree(a)
			fmt.Println("--")
			drawTree(b)
		}
		return
	}
	b, err := trees.ByName(name)
	fail(err)
	t := b.Build(size, root)
	describe(t)
	if draw {
		drawTree(t)
	}
}

func describe(t *trees.Tree) {
	leaves := 0
	for r := 0; r < t.Size(); r++ {
		if t.IsLeaf(r) {
			leaves++
		}
	}
	fmt.Printf("  %s  leaves=%d interior=%d\n", t, leaves, t.Size()-leaves)
}

func censusByLevel(topo *hwloc.Topology, t *trees.Tree) {
	counts := map[hwloc.Level]int{}
	for r := 0; r < t.Size(); r++ {
		if p := t.Parent[r]; p != -1 {
			counts[topo.LevelBetween(p, r)]++
		}
	}
	fmt.Println("  edges by lane:")
	for _, l := range []hwloc.Level{hwloc.LevelCore, hwloc.LevelSocket, hwloc.LevelNode} {
		fmt.Printf("    %-13s %d\n", l, counts[l])
	}
}

func drawTree(t *trees.Tree) {
	for r := 0; r < t.Size(); r++ {
		if len(t.Children[r]) == 0 {
			continue
		}
		fmt.Printf("  %4d → %v\n", r, t.Children[r])
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adapttree:", err)
		os.Exit(1)
	}
}
