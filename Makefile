GO ?= go

.PHONY: verify test build race vet bench

# Tier-1 gate: everything must build and every test must pass.
verify:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime and core packages host the real-goroutine substrate and the
# event-driven collectives — the only places with cross-goroutine traffic.
race:
	$(GO) test -race ./internal/runtime/... ./internal/core/...

vet:
	$(GO) vet ./...

# Microbenchmarks for the simulation kernel and segment-buffer pool;
# writes BENCH_kernel.json for the perf trajectory.
bench:
	./scripts/bench.sh
