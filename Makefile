GO ?= go

.PHONY: verify test build race vet bench chaos crash fec fuzz trace net progress serve obs scale

# Tier-1 gate: everything must build and every test must pass.
verify:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runtime and core packages host the real-goroutine substrate and the
# event-driven collectives — the only places with cross-goroutine traffic.
race:
	$(GO) test -race ./internal/runtime/... ./internal/core/...

vet:
	$(GO) vet ./...

# Microbenchmarks for the simulation kernel and segment-buffer pool plus
# the multi-collective concurrency benchmark; writes BENCH_kernel.json
# and BENCH_progress.json for the perf trajectory.
bench:
	./scripts/bench.sh

# Million-rank kernel-scaling ladder: tree bcast/reduce and allreduce in
# the goroutine-per-rank and flat rank drivers from 1k to 1M simulated
# ranks, with the ≥100k-broadcast-under-8GB and flat-beats-proc gates.
# Rows (events/s, peak RSS, ranks/GB) merge into BENCH_kernel.json.
scale:
	SCALE_LADDER=1k,10k,100k,1m SCALE_COLLS=bcast,reduce,allreduce ./scripts/scale.sh

# Shared progress-engine gate: the unified matching core and scheduler
# under the race detector (fairness/starvation, mid-flight enrollment,
# fuzz corpus regression), the zero-alloc segment-pool assertion, the
# goroutine-footprint gate on the readiness-loop transport, and the full
# bench gate (clean-run counters + BENCH_progress.json).
progress:
	$(GO) test -race ./internal/progress/...
	$(GO) test -run 'TestSegmentPoolZeroAlloc' ./internal/comm
	$(GO) test -race -run 'TestGoroutineFootprint' ./internal/nettransport
	./scripts/bench.sh

# Full-width conformance grid: every collective × world sizes × payload
# units × segment counts × fault plans, byte-compared against golden
# no-fault runs (ADAPT_CONFORM_FULL widens every axis).
chaos:
	ADAPT_CONFORM_FULL=1 $(GO) test -race -v -run 'TestConformance|TestFault|TestDropAll|TestProperty|TestClean' ./internal/conform

# Fail-stop conformance under the race detector: survivor-set grids for
# the fault-tolerant collectives (crash@rank plans, detector, tree
# repair) on both substrates, plus the clean-run detector-counter gate.
crash:
	ADAPT_CONFORM_FULL=1 $(GO) test -race -v -run 'TestCrash|TestCleanRunDetectorCountersZero' ./internal/conform
	$(GO) test -race -run 'TestBcastFT|TestReduceFT|TestFTDeterministicSchedule' ./internal/core

# Causal-trace pipeline gate: analyzer + exporter tests (including the
# critical-path == sim-makespan check), trace.Buffer under concurrent
# writers with -race, and the zero-overhead guarantee — the nil-tracer
# kernel dispatch path must stay allocation-free.
trace:
	$(GO) test -race ./internal/trace/...
	$(GO) test -run 'TestObserverNilZeroAlloc|TestTraceSweepByteIdentical' ./internal/sim ./internal/bench
	$(GO) test -run '^$$' -bench 'BenchmarkKernelDispatch$$|BenchmarkKernelDispatchObserved$$' -benchmem ./internal/sim

# TCP transport gate: the loopback socket suite under the race detector
# (matching engine, eager/rendezvous wire protocol, lease detector,
# crash paths), the cross-substrate conformance + boundary grids, and
# the multi-process adaptrun end-to-end scenarios (clean verified run,
# dead root -> structured RankFailedError, mid-tree crash healed).
net:
	$(GO) build ./...
	$(GO) test -race ./internal/nettransport/...
	$(GO) test -race -run 'TestConformanceGridTCP|TestCrashGridTCP|TestEagerBoundary|TestSeqWrap' ./internal/conform
	$(GO) test -run 'TestE2E' -v ./cmd/adaptrun

# Serving-layer gate: the daemon package under the race detector (the
# full soak battery with chaos, membership churn, fusing byte-identity,
# proxy sessions), the daemon-substrate conformance grid, and the full
# bench gate (BENCH_serve.json + the adaptd clean-counters check).
serve:
	$(GO) test -race ./internal/serve/...
	$(GO) test -race -run 'TestConformanceGridDaemon' ./internal/conform
	./scripts/bench.sh

# Live telemetry gate: the metrics core under the race detector
# (concurrent writers, merge algebra, quantile error bounds, the golden
# Prometheus exposition, the zero-alloc contract), the perf snapshot
# export-coverage tests, the admin e2e against a live daemon, the
# gate-cost benchmarks, and the bench.sh obs section (adaptd -admin
# under adaptbench -serve load, scraped mid-run by adaptctl -check ->
# BENCH_obs.json).
obs:
	$(GO) test -race ./internal/metrics/... ./internal/perf/...
	$(GO) test -race -run 'TestAdminAgainstLiveServer' ./internal/serve
	$(GO) test -run '^$$' -bench 'BenchmarkObserve|BenchmarkCounterDisabled|BenchmarkLatencyBracketDisabled' -benchmem ./internal/metrics
	./scripts/bench.sh

# Erasure-coding gate: the codec and controller under the race detector,
# the FEC paths of all three substrates (simulator, live runtime, TCP
# loopback), the cross-substrate FEC conformance grids, and the
# loss-sweep benchmark with its zero-retransmit gate (BENCH_fec.json).
fec:
	$(GO) test -race ./internal/fec/...
	$(GO) test -race -run 'TestFEC|TestLiveFEC|TestNetFEC' ./internal/simmpi ./internal/runtime ./internal/nettransport
	$(GO) test -race -run 'TestConformanceFEC' ./internal/conform
	$(GO) run ./cmd/adaptbench -fec-json BENCH_fec.json -scale quick

# Short fuzz passes over the tag-matching predicate, the fault-plan
# parser, the unified matching core, the daemon's framed request codec,
# and the erasure codec's encode/reconstruct round trip; the committed
# corpora under testdata/fuzz run in every normal `go test`, this target
# explores beyond them.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTagMatch -fuzztime $(FUZZTIME) ./internal/comm
	$(GO) test -run '^$$' -fuzz FuzzParsePlan -fuzztime $(FUZZTIME) ./internal/faults
	$(GO) test -run '^$$' -fuzz FuzzMatch -fuzztime $(FUZZTIME) ./internal/progress
	$(GO) test -run '^$$' -fuzz FuzzRequestFrame -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzFEC -fuzztime $(FUZZTIME) ./internal/fec
