// GPU cluster demo (paper §4, Figure 6 and Figure 11): on the simulated
// PSG machine (8 nodes × 4 K40s), compare
//
//   - broadcast with and without the explicit CPU staging buffer on node
//     leaders (§4.1), and
//   - reduce with CPU arithmetic versus GPU-offloaded kernels (§4.2).
//
// go run ./examples/gpucluster
package main

import (
	"fmt"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func main() {
	p := netmodel.PSG(8) // 32 GPUs
	tree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	fmt.Printf("platform: %s\n\n", p)

	run := func(body func(c *simmpi.Comm)) time.Duration {
		k := sim.New()
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(body)
		return k.MustRun()
	}

	const size = 32 * netmodel.MB
	opt := core.DefaultOptions()

	unstaged := run(func(c *simmpi.Comm) {
		core.Bcast(c, tree, comm.Sized(size), opt) // every leader send pulls over PCIe
	})
	staged := run(func(c *simmpi.Comm) {
		core.BcastStaged(c, p.Topo, tree, comm.Sized(size), opt)
	})
	fmt.Printf("broadcast %s across %d GPUs:\n", "32MB", p.Topo.Size())
	fmt.Printf("  device-direct (per-child PCIe pulls): %v\n", unstaged.Round(time.Microsecond))
	fmt.Printf("  explicit CPU staging buffer (§4.1):   %v (%.1fx)\n\n",
		staged.Round(time.Microsecond), float64(unstaged)/float64(staged))

	cpuReduce := run(func(c *simmpi.Comm) {
		core.Reduce(c, tree, comm.Sized(size), opt) // blocking CPU arithmetic
	})
	gpuReduce := run(func(c *simmpi.Comm) {
		core.ReduceOffload(c, tree, comm.Sized(size), opt)
	})
	fmt.Printf("reduce %s across %d GPUs:\n", "32MB", p.Topo.Size())
	fmt.Printf("  CPU reduction (state of the art):     %v\n", cpuReduce.Round(time.Microsecond))
	fmt.Printf("  GPU-offloaded async kernels (§4.2):   %v (%.1fx)\n",
		gpuReduce.Round(time.Microsecond), float64(cpuReduce)/float64(gpuReduce))
}
