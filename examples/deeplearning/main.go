// Data-parallel training demo — the workload the paper's introduction
// motivates ("more and more applications, including ... deep learning
// applications, are adopting accelerators"). Eight in-process workers fit
// a linear model by synchronous SGD: each computes gradients on its data
// shard and the gradients are averaged every step with the ring
// allreduce, running live on the goroutine runtime.
//
//	go run ./examples/deeplearning
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/runtime"
)

const (
	workers  = 8
	features = 16
	perRank  = 256 // samples per worker
	steps    = 120
	lr       = 0.05
)

func main() {
	// Ground-truth weights; each worker holds a private shard of (x, y).
	truth := make([]float64, features)
	for i := range truth {
		truth[i] = math.Sin(float64(i))
	}

	world := runtime.NewWorld(workers)
	var mu sync.Mutex
	var finalLoss float64
	world.Run(func(c *runtime.Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		xs := make([][]float64, perRank)
		ys := make([]float64, perRank)
		for s := range xs {
			xs[s] = make([]float64, features)
			var dot float64
			for f := range xs[s] {
				xs[s][f] = rng.NormFloat64()
				dot += xs[s][f] * truth[f]
			}
			ys[s] = dot + 0.01*rng.NormFloat64()
		}

		w := make([]float64, features)
		for step := 0; step < steps; step++ {
			// Local gradient of mean squared error on this shard.
			grad := make([]float64, features)
			var loss float64
			for s := range xs {
				var pred float64
				for f := range w {
					pred += w[f] * xs[s][f]
				}
				err := pred - ys[s]
				loss += err * err
				for f := range w {
					grad[f] += 2 * err * xs[s][f] / perRank
				}
			}
			loss /= perRank

			// Average gradients across all workers with the ring
			// allreduce (bandwidth-optimal, the deep-learning standard).
			opt := coll.DefaultOptions()
			opt.Seq = step
			opt.Op = comm.OpSum
			opt.Datatype = comm.Float64
			summed := coll.AllreduceRing(c, comm.Bytes(comm.EncodeFloat64s(grad)), opt)
			g := comm.DecodeFloat64s(summed.Data)
			for f := range w {
				w[f] -= lr * g[f] / workers
			}

			if c.Rank() == 0 && (step%30 == 0 || step == steps-1) {
				mu.Lock()
				fmt.Printf("step %3d: shard-0 loss %.6f\n", step, loss)
				finalLoss = loss
				mu.Unlock()
			}
		}

		// Report the recovered weights' distance to the truth.
		if c.Rank() == 0 {
			var dist float64
			for f := range w {
				d := w[f] - truth[f]
				dist += d * d
			}
			mu.Lock()
			fmt.Printf("‖w − w*‖₂ = %.4f after %d synchronized steps\n", math.Sqrt(dist), steps)
			mu.Unlock()
		}
	})
	if finalLoss > 0.01 {
		fmt.Println("warning: training did not converge as expected")
	}
}
