// Quickstart: the ADAPT collective library in ~50 lines.
//
// Eight in-process ranks broadcast a buffer with the event-driven engine,
// reduce a vector of per-rank contributions, and allreduce a counter —
// all on the live goroutine runtime (no simulation involved).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/runtime"
	"adapt/internal/trees"
)

func main() {
	const ranks = 8
	world := runtime.NewWorld(ranks)
	tree := trees.Binomial(ranks, 0)

	var mu sync.Mutex
	world.Run(func(c *runtime.Comm) {
		opt := core.DefaultOptions()
		opt.SegSize = 4 << 10 // small segments so the pipeline is visible

		// 1. Broadcast: rank 0's payload reaches everyone.
		var msg comm.Msg
		payload := []byte("hello from the ADAPT event-driven broadcast")
		if c.Rank() == 0 {
			msg = comm.Bytes(payload)
		} else {
			msg = comm.Sized(len(payload))
		}
		got := core.Bcast(c, tree, msg, opt)
		mu.Lock()
		fmt.Printf("rank %d received: %q\n", c.Rank(), string(got.Data))
		mu.Unlock()

		// 2. Reduce: element-wise sum of per-rank vectors lands at rank 0.
		opt.Seq = 1
		opt.Op = comm.OpSum
		opt.Datatype = comm.Int64
		contrib := []int64{int64(c.Rank()), int64(c.Rank() * c.Rank()), 1}
		red := core.Reduce(c, tree, comm.Bytes(comm.EncodeInt64s(contrib)), opt)
		if c.Rank() == 0 {
			fmt.Printf("reduce(sum) at root: %v\n", comm.DecodeInt64s(red.Data))
		}

		// 3. Allreduce: every rank ends up with the global sum.
		opt.Seq = 2
		all := coll.Allreduce(c, tree, comm.Bytes(comm.EncodeInt64s([]int64{int64(c.Rank() + 1)})), opt)
		if c.Rank() == ranks-1 {
			fmt.Printf("allreduce(sum of 1..%d) everywhere: %v\n", ranks, comm.DecodeInt64s(all.Data))
		}
	})
}
