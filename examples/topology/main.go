// Topology-aware tree demo (paper §3, Figure 5): build the
// single-communicator topology-aware tree for a small machine, print its
// structure level by level, then show why it beats the multi-level
// multi-communicator scheme: cross-level overlap.
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/hwloc"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func main() {
	// Figure 5's machine: 3 nodes × 2 sockets × 4 cores.
	topo := hwloc.New(3, 2, 4)
	tree := trees.Topology(topo, 0, trees.ChainConfig())
	fmt.Printf("machine: %s\n", topo)
	fmt.Printf("topology-aware tree: %s\n\n", tree)
	for r := 0; r < topo.Size(); r++ {
		if len(tree.Children[r]) == 0 {
			continue
		}
		fmt.Printf("  rank %2d →", r)
		for _, c := range tree.Children[r] {
			fmt.Printf("  %d (%s)", c, topo.LevelBetween(r, c))
		}
		fmt.Println()
	}

	// Same tree, same fabric: single-communicator ADAPT versus the
	// level-by-level multi-communicator scheme (§3.1).
	p := netmodel.Cori(8) // 256 simulated ranks
	adaptTree := trees.Topology(p.Topo, 0, trees.ChainConfig())
	spec := coll.MultiLevelSpec{
		InterNode:   trees.Builder{Name: "chain", Build: trees.Chain},
		InterSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		IntraSocket: trees.Builder{Name: "chain", Build: trees.Chain},
		Alg:         coll.NonBlocking,
	}
	run := func(body func(c *simmpi.Comm)) time.Duration {
		k := sim.New()
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(body)
		return k.MustRun()
	}
	single := run(func(c *simmpi.Comm) {
		core.Bcast(c, adaptTree, comm.Sized(4*netmodel.MB), core.DefaultOptions())
	})
	multi := run(func(c *simmpi.Comm) {
		coll.BcastMultiLevel(c, p.Topo, 0, comm.Sized(4*netmodel.MB), coll.DefaultOptions(), spec)
	})
	fmt.Printf("\n4MB broadcast over %d ranks (same chain shapes at every level):\n", p.Topo.Size())
	fmt.Printf("  multi-communicator, level-by-level: %v\n", multi.Round(time.Microsecond))
	fmt.Printf("  single-communicator ADAPT tree:     %v (%.1fx)\n",
		single.Round(time.Microsecond), float64(multi)/float64(single))
	fmt.Println("\nThe single tree lets the inter-node, inter-socket and intra-socket")
	fmt.Println("lanes stream the same pipeline concurrently; the multi-level scheme")
	fmt.Println("finishes each level before the next may start.")
}
