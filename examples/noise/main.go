// Noise resistance demo (paper §2 and Figure 7): the same 4 MB broadcast
// under the three synchronization disciplines — blocking, nonblocking
// with Waitall, and ADAPT's event-driven engine — on a simulated 128-rank
// cluster, quiet and with the paper's 10 Hz noise injection.
//
//	go run ./examples/noise
package main

import (
	"fmt"
	"time"

	"adapt/internal/coll"
	"adapt/internal/comm"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func main() {
	p := netmodel.Cori(4) // 128 simulated ranks
	tree := trees.Topology(p.Topo, 0, libmodel.AdaptDefaultConfig())

	measure := func(alg coll.Algorithm, spec noise.Spec) time.Duration {
		k := sim.New()
		w := simmpi.NewWorld(k, p, spec)
		var t0, t1 time.Duration
		w.Spawn(func(c *simmpi.Comm) {
			opt := coll.DefaultOptions()
			for rep := 0; rep < 6; rep++ {
				opt.Seq = rep
				coll.Bcast(c, tree, comm.Sized(4*netmodel.MB), opt, alg)
			}
			coll.Barrier(c, 99)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			for rep := 6; rep < 12; rep++ {
				opt.Seq = rep
				coll.Bcast(c, tree, comm.Sized(4*netmodel.MB), opt, alg)
			}
			if c.Rank() == 0 {
				t1 = c.Now()
			}
		})
		k.MustRun()
		return (t1 - t0) / 6
	}

	noisy := noise.Percent(10)
	noisy.Fraction = 0.05

	fmt.Printf("4MB broadcast on %s, same topology-aware tree, three disciplines:\n\n", p)
	fmt.Printf("  %-22s %12s %12s %10s\n", "discipline", "quiet", "10% noise", "slowdown")
	for _, alg := range []coll.Algorithm{coll.Blocking, coll.NonBlocking, coll.Adapt} {
		quiet := measure(alg, noise.None)
		loud := measure(alg, noisy)
		fmt.Printf("  %-22s %12v %12v %9.0f%%\n",
			alg, quiet.Round(time.Microsecond), loud.Round(time.Microsecond),
			100*(float64(loud)/float64(quiet)-1))
	}
	fmt.Println("\nThe event-driven discipline keeps only data dependencies, so noise")
	fmt.Println("is absorbed by the in-flight windows instead of propagating through")
	fmt.Println("handshakes (blocking) or Waitall barriers (nonblocking).")
}
