// Asynchronous progress demo (paper §7's future work, implemented): a
// non-blocking ADAPT broadcast is started, the application computes while
// the collective advances through the progress engine, and Wait collects
// the result. On the simulator the overlap is visible as saved virtual
// time; a second scenario overlaps two collectives with each other.
//
//	go run ./examples/overlap
package main

import (
	"fmt"
	"time"

	"adapt/internal/comm"
	"adapt/internal/core"
	"adapt/internal/libmodel"
	"adapt/internal/netmodel"
	"adapt/internal/noise"
	"adapt/internal/sim"
	"adapt/internal/simmpi"
	"adapt/internal/trees"
)

func main() {
	p := netmodel.Cori(4) // 128 simulated ranks
	tree := trees.Topology(p.Topo, 0, libmodel.AdaptDefaultConfig())
	const size = 4 * netmodel.MB
	compute := 2 * time.Millisecond

	run := func(body func(c *simmpi.Comm)) time.Duration {
		k := sim.New()
		w := simmpi.NewWorld(k, p, noise.None)
		w.Spawn(body)
		return k.MustRun()
	}

	sequential := run(func(c *simmpi.Comm) {
		core.Bcast(c, tree, comm.Sized(size), core.DefaultOptions())
		c.ComputeFor(compute) // application work afterwards
	})
	// Naive overlap: one solid compute block. The rank IS the progress
	// engine, so the collective stalls at every rank for the whole block —
	// the classic single-threaded-MPI pitfall.
	naive := run(func(c *simmpi.Comm) {
		op := core.StartBcast(c, tree, comm.Sized(size), core.DefaultOptions())
		c.ComputeFor(compute)
		op.Wait()
	})
	// Application-driven progress: compute in slices, poking the engine
	// (MPI_Test style) between slices so segments keep flowing.
	const slices = 40
	poked := run(func(c *simmpi.Comm) {
		op := core.StartBcast(c, tree, comm.Sized(size), core.DefaultOptions())
		for i := 0; i < slices; i++ {
			c.ComputeFor(compute / slices)
			c.TryProgress()
		}
		op.Wait()
	})
	fmt.Printf("4MB broadcast + %v of application compute on %d ranks:\n", compute, p.Topo.Size())
	fmt.Printf("  bcast, then compute:             %v\n", sequential.Round(time.Microsecond))
	fmt.Printf("  one compute block during bcast:  %v (%.0f%% hidden — compute starves the engine)\n",
		naive.Round(time.Microsecond), 100*float64(sequential-naive)/float64(compute))
	fmt.Printf("  sliced compute + TryProgress:    %v (%.0f%% hidden)\n\n",
		poked.Round(time.Microsecond), 100*float64(sequential-poked)/float64(compute))

	// Two collectives in flight at once: a broadcast and a reduction share
	// the progress engine and the (disjoint) lanes.
	serial2 := run(func(c *simmpi.Comm) {
		opt := core.DefaultOptions()
		core.Bcast(c, tree, comm.Sized(size), opt)
		opt.Seq = 1
		core.Reduce(c, tree, comm.Sized(size), opt)
	})
	overlap2 := run(func(c *simmpi.Comm) {
		opt := core.DefaultOptions()
		b := core.StartBcast(c, tree, comm.Sized(size), opt)
		opt.Seq = 1
		r := core.StartReduce(c, tree, comm.Sized(size), opt)
		b.Wait()
		r.Wait()
	})
	fmt.Printf("4MB broadcast + 4MB reduce:\n")
	fmt.Printf("  back to back:   %v\n", serial2.Round(time.Microsecond))
	fmt.Printf("  concurrently:   %v (%.1fx)\n", overlap2.Round(time.Microsecond),
		float64(serial2)/float64(overlap2))
}
